open! Import

type point = {
  index : int;
  scenario : string;
  metric : Metric.kind;
  scale : float;
  seed : int;
}

type outcome = { point : point; hash : string; indicators : Measure.indicators }

type report = { outcomes : outcome array; json : Obs_json.t }

let points (spec : Sweep_spec.t) =
  (* Fixed axis nesting — scenario outermost, seed innermost — so a
     spec always enumerates the same grid in the same order no matter
     how the run is parallelized. *)
  let acc = ref [] in
  let index = ref 0 in
  List.iter
    (fun sc ->
      let scenario = Sweep_spec.scenario_name sc in
      List.iter
        (fun metric ->
          List.iter
            (fun scale ->
              List.iter
                (fun seed ->
                  acc := { index = !index; scenario; metric; scale; seed } :: !acc;
                  incr index)
                spec.seeds)
            spec.scales)
        spec.metrics)
    spec.scenarios;
  List.rev !acc

(* ---------------------------------------------------------------- *)
(* Point identity.  A point's hash names the exact work it stands for —
   scenario *content* (not just its path), metric, scale, seed and the
   period budget — and deliberately nothing about the grid it sits in,
   so shard files survive re-sharding and a resumed run survives adding
   axes to the spec.  MD5 (stdlib [Digest]) is plenty: this is a cache
   key, not a security boundary. *)

let hash_version = "arpanet-sweep-point-v1"

let point_hash ~scenario_digest (spec : Sweep_spec.t) p =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [ hash_version;
            scenario_digest;
            p.scenario;
            Metric.kind_name p.metric;
            Printf.sprintf "%h" p.scale;
            string_of_int p.seed;
            string_of_int spec.periods;
            string_of_int spec.warmup ]))

(* ---------------------------------------------------------------- *)
(* Parse-once preparation.  Everything domains share is built here,
   sequentially, and never written afterwards: graphs and parsed scripts
   are immutable, and the per-(scenario, seed) traffic templates are
   private to the tables until [prepare] returns.  Per point the only
   remaining work besides the simulation itself is one
   [Traffic_matrix.scale] — a fresh private matrix, so scripted
   link/traffic events cannot leak between concurrently running
   points. *)

type prepared = {
  spec : Sweep_spec.t;
  pts : point array;
  hashes : string array;  (* hashes.(i) belongs to pts.(i) *)
  graphs : (string, Graph.t) Hashtbl.t;  (* builtin name -> topology *)
  scripts : (string, Script.t) Hashtbl.t;  (* file path -> parsed script *)
  templates : (string * int, Traffic_matrix.t) Hashtbl.t;
      (* (scenario, seed) -> unscaled demand template *)
}

let prepared_points prep = prep.pts

let point_hashes prep = prep.hashes

let builtin_graph name =
  match name with
  | "arpanet" -> Arpanet.topology ()
  | "milnet" -> Milnet.topology ()
  | other -> invalid_arg (Printf.sprintf "Sweep_engine: unknown builtin %S" other)

let builtin_peak name rng graph =
  match name with
  | "arpanet" -> Arpanet.peak_traffic rng graph
  | _ -> Milnet.peak_traffic rng graph

let prepare (spec : Sweep_spec.t) =
  let pts = Array.of_list (points spec) in
  let graphs = Hashtbl.create 4 in
  let scripts = Hashtbl.create 4 in
  let digests = Hashtbl.create 4 in
  List.iter
    (fun sc ->
      let name = Sweep_spec.scenario_name sc in
      if not (Hashtbl.mem digests name) then
        match sc with
        | Sweep_spec.Builtin b ->
          Hashtbl.add graphs name (builtin_graph b);
          Hashtbl.add digests name ("builtin:" ^ b)
        | Sweep_spec.File path ->
          let text = In_channel.with_open_text path In_channel.input_all in
          (match Script.parse text with
          | Ok s -> Hashtbl.add scripts name s
          | Error e ->
            invalid_arg (Printf.sprintf "Sweep_engine: scenario %S: %s" name e));
          Hashtbl.add digests name (Digest.to_hex (Digest.string text)))
    spec.scenarios;
  let templates = Hashtbl.create 16 in
  Array.iter
    (fun p ->
      let key = (p.scenario, p.seed) in
      if not (Hashtbl.mem templates key) then
        let template =
          match Hashtbl.find_opt scripts p.scenario with
          | None ->
            builtin_peak p.scenario (Rng.create p.seed)
              (Hashtbl.find graphs p.scenario)
          | Some script ->
            (* Per-seed demand jitter (±10 %, visiting flows in the
               matrix's deterministic iteration order) turns one scenario
               file into a small family of comparable traffic
               realisations; the point's load scale composes on top at
               dispatch time.  Scripted [scale] events stay relative to
               these demands. *)
            let rng = Rng.create p.seed in
            let template =
              Traffic_matrix.create ~nodes:(Traffic_matrix.nodes script.traffic)
            in
            Traffic_matrix.iter script.traffic (fun ~src ~dst demand ->
                let jitter = Rng.uniform rng ~lo:0.9 ~hi:1.1 in
                Traffic_matrix.set template ~src ~dst (demand *. jitter));
            template
        in
        Hashtbl.add templates key template)
    pts;
  let hashes =
    Array.map
      (fun p -> point_hash ~scenario_digest:(Hashtbl.find digests p.scenario) spec p)
      pts
  in
  { spec; pts; hashes; graphs; scripts; templates }

(* ---------------------------------------------------------------- *)
(* Running points.  Each point's simulator is private — built from the
   shared immutable spec plus one fresh scaled matrix — and runs with
   [~domains:1] so pools never nest. *)

let builtin_sim ?tracer prep p =
  let graph = Hashtbl.find prep.graphs p.scenario in
  let template = Hashtbl.find prep.templates (p.scenario, p.seed) in
  let traffic = Traffic_matrix.scale template p.scale in
  let sim = Flow_sim.create ~domains:1 ?tracer graph p.metric traffic in
  for _ = 1 to prep.spec.periods do
    ignore (Flow_sim.step sim)
  done;
  sim

let scripted_sim ?tracer prep p =
  let script = Hashtbl.find prep.scripts p.scenario in
  let template = Hashtbl.find prep.templates (p.scenario, p.seed) in
  let traffic = Traffic_matrix.scale template p.scale in
  Script.run ~domains:1 ?tracer ~metric:p.metric { script with traffic }
    ~periods:prep.spec.periods

let run_point ?tracer prep i =
  let p = prep.pts.(i) in
  let sim =
    if Hashtbl.mem prep.scripts p.scenario then scripted_sim ?tracer prep p
    else builtin_sim ?tracer prep p
  in
  let indicators = Flow_sim.indicators sim ~skip:prep.spec.warmup () in
  { point = p; hash = prep.hashes.(i); indicators }

(* ---------------------------------------------------------------- *)
(* Report assembly.  Per-point telemetry registries are a pure function
   of (point index, indicators) — [Measure.export] under a point label —
   so they are regenerated here rather than carried through shard files
   or resumes, and merged in point-index order: the report's bytes
   depend only on which points it covers, never on the domain count,
   the shard layout, or the order workers finished. *)

let point_registry p indicators =
  let registry = Obs_metrics.create () in
  Measure.export
    ~labels:[ ("point", Printf.sprintf "%05d" p.index) ]
    registry indicators;
  registry

let indicators_json (i : Measure.indicators) =
  Obs_json.Obj
    [ ("elapsed_s", Obs_json.Float i.elapsed_s);
      ("internode_traffic_bps", Obs_json.Float i.internode_traffic_bps);
      ("round_trip_delay_ms", Obs_json.Float i.round_trip_delay_ms);
      ("updates_per_s", Obs_json.Float i.updates_per_s);
      ("update_period_per_node_s", Obs_json.Float i.update_period_per_node_s);
      ("actual_path_hops", Obs_json.Float i.actual_path_hops);
      ("minimum_path_hops", Obs_json.Float i.minimum_path_hops);
      ("path_ratio", Obs_json.Float i.path_ratio);
      ("dropped_per_s", Obs_json.Float i.dropped_per_s);
      ("overhead_bps", Obs_json.Float i.overhead_bps);
      ("delay_p50_ms", Obs_json.Float i.delay_p50_ms);
      ("delay_p95_ms", Obs_json.Float i.delay_p95_ms);
      ("delay_p99_ms", Obs_json.Float i.delay_p99_ms);
      ("route_changes_per_period", Obs_json.Float i.route_changes_per_period);
      ("next_hop_flips_per_period", Obs_json.Float i.next_hop_flips_per_period);
      ("link_flips_per_period", Obs_json.Float i.link_flips_per_period)
    ]

let outcome_json o =
  Obs_json.Obj
    [ ("index", Obs_json.Int o.point.index);
      ("scenario", Obs_json.String o.point.scenario);
      ("metric", Obs_json.String (Metric.kind_name o.point.metric));
      ("scale", Obs_json.Float o.point.scale);
      ("seed", Obs_json.Int o.point.seed);
      ("hash", Obs_json.String o.hash);
      ("indicators", indicators_json o.indicators)
    ]

let report_of_outcomes (spec : Sweep_spec.t) outcomes =
  let master = Obs_metrics.create () in
  Obs_metrics.set_meta master "tool" "arpanet_sweep";
  Obs_metrics.set_meta master "points" (string_of_int (Array.length outcomes));
  Obs_metrics.set_meta master "periods" (string_of_int spec.periods);
  Obs_metrics.set_meta master "warmup" (string_of_int spec.warmup);
  Array.iter
    (fun o -> Obs_metrics.merge ~into:master (point_registry o.point o.indicators))
    outcomes;
  let json =
    Obs_metrics.to_json master
      ~extra:
        [ ("points", Obs_json.List (Array.to_list (Array.map outcome_json outcomes)))
        ]
  in
  { outcomes; json }

(* ---------------------------------------------------------------- *)

let run_prepared ?(domains = Domain_pool.default_size ())
    ?(tracer = Tracer.null) ?subset ?reuse prep =
  let selected =
    match subset with
    | None -> Array.init (Array.length prep.pts) Fun.id
    | Some keep ->
      Array.of_list
        (List.filter (fun i -> keep prep.pts.(i))
           (List.init (Array.length prep.pts) Fun.id))
  in
  let slots = Array.make (Array.length selected) None in
  (* Points whose hash the caller already has an answer for are filled
     in up front and never dispatched — this is what makes [--resume]
     skip finished work. *)
  let todo =
    match reuse with
    | None -> Array.mapi (fun s i -> (s, i)) selected
    | Some lookup ->
      let pending = ref [] in
      Array.iteri
        (fun s i ->
          match lookup prep.hashes.(i) with
          | Some indicators ->
            slots.(s) <-
              Some { point = prep.pts.(i); hash = prep.hashes.(i); indicators }
          | None -> pending := (s, i) :: !pending)
        selected;
      Array.of_list (List.rev !pending)
  in
  let n = Array.length todo in
  (* Each point's whole simulation is one span on the track of whichever
     domain ran it, index range in the args — Perfetto shows the sweep's
     work distribution directly. *)
  let tr_point = Tracer.intern tracer "sweep_point" in
  let one k =
    let s, i = todo.(k) in
    Tracer.span_begin_range tracer tr_point ~lo:i ~hi:(i + 1);
    let o = run_point ~tracer prep i in
    Tracer.span_end tracer tr_point;
    slots.(s) <- Some o
  in
  (if domains > 1 && n > 1 then (
     let pool = Domain_pool.create domains in
     if Tracer.enabled tracer then
       Domain_pool.set_probe pool (Some (Tracer.pool_probe tracer));
     (* Grid points are wildly uneven — a hier10k point can cost 1000×
        an arpanet toy — so handout is work-stealing, not static
        chunks: a domain that lands a heavy point keeps it while the
        others drain and then steal the rest of its share. *)
     Fun.protect
       ~finally:(fun () -> Domain_pool.shutdown pool)
       (fun () -> Domain_pool.parallel_for_dynamic pool n one))
   else
     for k = 0 to n - 1 do
       one k
     done);
  let outcomes =
    Array.map
      (function
        | Some o -> o
        | None -> invalid_arg "Sweep_engine: point did not complete")
      slots
  in
  report_of_outcomes prep.spec outcomes

let run ?domains ?tracer spec = run_prepared ?domains ?tracer (prepare spec)

(* ---------------------------------------------------------------- *)
(* Reading reports back.  Shards and resumes only need each stored
   point's (hash, indicators): registries regenerate from indicators,
   and grid coordinates come from the prepared spec, not the file.
   Floats survive the trip exactly — the printer emits the shortest
   representation that round-trips — so a merged or resumed report is
   byte-identical to an uninterrupted run. *)

let ( let* ) = Result.bind

let float_field name j =
  match Obs_json.member name j with
  | Error _ -> Result.Error (Printf.sprintf "missing indicator %S" name)
  | Ok Obs_json.Null -> Ok Float.nan (* the printer maps NaN to null *)
  | Ok v ->
    (match Obs_json.to_float v with
    | Ok f -> Ok f
    | Error _ -> Result.Error (Printf.sprintf "indicator %S is not a number" name))

let indicators_of_json j : (Measure.indicators, string) result =
  let* elapsed_s = float_field "elapsed_s" j in
  let* internode_traffic_bps = float_field "internode_traffic_bps" j in
  let* round_trip_delay_ms = float_field "round_trip_delay_ms" j in
  let* updates_per_s = float_field "updates_per_s" j in
  let* update_period_per_node_s = float_field "update_period_per_node_s" j in
  let* actual_path_hops = float_field "actual_path_hops" j in
  let* minimum_path_hops = float_field "minimum_path_hops" j in
  let* path_ratio = float_field "path_ratio" j in
  let* dropped_per_s = float_field "dropped_per_s" j in
  let* overhead_bps = float_field "overhead_bps" j in
  let* delay_p50_ms = float_field "delay_p50_ms" j in
  let* delay_p95_ms = float_field "delay_p95_ms" j in
  let* delay_p99_ms = float_field "delay_p99_ms" j in
  let* route_changes_per_period = float_field "route_changes_per_period" j in
  let* next_hop_flips_per_period = float_field "next_hop_flips_per_period" j in
  let* link_flips_per_period = float_field "link_flips_per_period" j in
  Ok
    { Measure.elapsed_s;
      internode_traffic_bps;
      round_trip_delay_ms;
      updates_per_s;
      update_period_per_node_s;
      actual_path_hops;
      minimum_path_hops;
      path_ratio;
      dropped_per_s;
      overhead_bps;
      delay_p50_ms;
      delay_p95_ms;
      delay_p99_ms;
      route_changes_per_period;
      next_hop_flips_per_period;
      link_flips_per_period }

let stored_points json =
  let* pts =
    match Obs_json.member "points" json with
    | Ok (Obs_json.List pts) -> Ok pts
    | Ok _ -> Result.Error "report \"points\" is not a list"
    | Error _ -> Result.Error "report has no \"points\" list"
  in
  let rec decode k acc = function
    | [] -> Ok (List.rev acc)
    | item :: rest ->
      let ctx msg = Printf.sprintf "points[%d]: %s" k msg in
      let* hash =
        match Obs_json.member "hash" item with
        | Ok (Obs_json.String h) -> Ok h
        | Ok _ -> Result.Error (ctx "\"hash\" is not a string")
        | Error _ -> Result.Error (ctx "missing \"hash\"")
      in
      let* indicators =
        match Obs_json.member "indicators" item with
        | Ok ind -> Result.map_error ctx (indicators_of_json ind)
        | Error _ -> Result.Error (ctx "missing \"indicators\"")
      in
      decode (k + 1) ((hash, indicators) :: acc) rest
  in
  decode 0 [] pts

(* ---------------------------------------------------------------- *)
(* Merging shard reports.  Points are matched purely by hash; the
   prepared spec supplies order and coordinates, so merge order — and
   any intermediate partial merge — cannot change the result. *)

let merge ?(allow_partial = false) prep shards =
  let table = Hashtbl.create (Array.length prep.pts) in
  let known = Hashtbl.create (Array.length prep.pts) in
  Array.iter (fun h -> Hashtbl.replace known h ()) prep.hashes;
  let rec gather k = function
    | [] -> Ok ()
    | shard :: rest ->
      let* pts = Result.map_error (Printf.sprintf "shard %d: %s" k) (stored_points shard) in
      let* () =
        List.fold_left
          (fun acc (hash, indicators) ->
            let* () = acc in
            if not (Hashtbl.mem known hash) then
              Result.Error
                (Printf.sprintf
                   "shard %d: point %s is not in this spec's grid (spec or \
                    scenario changed since the shard was written?)"
                   k hash)
            else
              match Hashtbl.find_opt table hash with
              | None ->
                Hashtbl.add table hash indicators;
                Ok ()
              | Some prev ->
                (* Runs are deterministic, so a point appearing in two
                   shards must agree; disagreement means the shards came
                   from different builds or scenarios. *)
                if
                  Obs_json.to_string (indicators_json prev)
                  = Obs_json.to_string (indicators_json indicators)
                then Ok ()
                else
                  Result.Error
                    (Printf.sprintf
                       "shard %d: point %s conflicts with an earlier shard" k
                       hash))
          (Ok ()) pts
      in
      gather (k + 1) rest
  in
  let* () = gather 0 shards in
  let present = ref [] in
  let missing = ref 0 in
  Array.iteri
    (fun i p ->
      match Hashtbl.find_opt table prep.hashes.(i) with
      | Some indicators ->
        present := { point = p; hash = prep.hashes.(i); indicators } :: !present
      | None -> incr missing)
    prep.pts;
  if !missing > 0 && not allow_partial then
    Result.Error
      (Printf.sprintf "%d of %d grid points missing from the given shards"
         !missing (Array.length prep.pts))
  else Ok (report_of_outcomes prep.spec (Array.of_list (List.rev !present)))

(* ---------------------------------------------------------------- *)

let csv_columns =
  [ "index"; "scenario"; "metric"; "scale"; "seed"; "elapsed_s";
    "internode_traffic_bps"; "round_trip_delay_ms"; "updates_per_s";
    "update_period_per_node_s"; "actual_path_hops"; "minimum_path_hops";
    "path_ratio"; "dropped_per_s"; "overhead_bps"; "delay_p50_ms";
    "delay_p95_ms"; "delay_p99_ms"; "route_changes_per_period";
    "next_hop_flips_per_period"; "link_flips_per_period" ]

let csv report =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," csv_columns);
  Buffer.add_char buf '\n';
  let num x = Obs_json.to_string (Obs_json.Float x) in
  Array.iter
    (fun o ->
      let i = o.indicators in
      [ string_of_int o.point.index; o.point.scenario;
        Metric.kind_name o.point.metric; num o.point.scale;
        string_of_int o.point.seed; num i.elapsed_s;
        num i.internode_traffic_bps; num i.round_trip_delay_ms;
        num i.updates_per_s; num i.update_period_per_node_s;
        num i.actual_path_hops; num i.minimum_path_hops; num i.path_ratio;
        num i.dropped_per_s; num i.overhead_bps; num i.delay_p50_ms;
        num i.delay_p95_ms; num i.delay_p99_ms;
        num i.route_changes_per_period; num i.next_hop_flips_per_period;
        num i.link_flips_per_period ]
      |> String.concat "," |> Buffer.add_string buf;
      Buffer.add_char buf '\n')
    report.outcomes;
  Buffer.contents buf

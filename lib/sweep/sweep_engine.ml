open! Import

type point = {
  index : int;
  scenario : string;
  metric : Metric.kind;
  scale : float;
  seed : int;
}

type outcome = { point : point; hash : string; indicators : Measure.indicators }

type ranking = {
  r_scenario : string;
  r_metric : Metric.kind;
  r_rank : int;
  r_score : int;
  r_route_changes : float;
  r_nh_flips : float;
  r_link_flips : float;
}

type knee = {
  k_scenario : string;
  k_metric : Metric.kind;
  k_scale_delay : float;
  k_scale_throughput : float;
  k_delay_ms : float;
  k_throughput_bps : float;
}

type report = {
  outcomes : outcome array;
  json : Obs_json.t;
  rankings : ranking list;
  knees : knee list;
}

let points (spec : Sweep_spec.t) =
  (* Fixed axis nesting — scenario outermost, seed innermost — so a
     spec always enumerates the same grid in the same order no matter
     how the run is parallelized. *)
  let acc = ref [] in
  let index = ref 0 in
  List.iter
    (fun sc ->
      let scenario = Sweep_spec.scenario_name sc in
      List.iter
        (fun metric ->
          List.iter
            (fun scale ->
              List.iter
                (fun seed ->
                  acc := { index = !index; scenario; metric; scale; seed } :: !acc;
                  incr index)
                spec.seeds)
            spec.scales)
        spec.metrics)
    spec.scenarios;
  List.rev !acc

(* ---------------------------------------------------------------- *)
(* Point identity.  A point's hash names the exact work it stands for —
   scenario *content* (not just its path), metric, scale, seed and the
   period budget — and deliberately nothing about the grid it sits in,
   so shard files survive re-sharding and a resumed run survives adding
   axes to the spec.  MD5 (stdlib [Digest]) is plenty: this is a cache
   key, not a security boundary. *)

let hash_version = "arpanet-sweep-point-v1"

let point_hash ~scenario_digest (spec : Sweep_spec.t) p =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [ hash_version;
            scenario_digest;
            p.scenario;
            Metric.kind_name p.metric;
            Printf.sprintf "%h" p.scale;
            string_of_int p.seed;
            string_of_int spec.periods;
            string_of_int spec.warmup ]))

(* ---------------------------------------------------------------- *)
(* Parse-once preparation.  Everything domains share is built here,
   sequentially, and never written afterwards: graphs and parsed scripts
   are immutable, and the per-(scenario, seed) traffic templates are
   private to the tables until [prepare] returns.  Per point the only
   remaining work besides the simulation itself is one
   [Traffic_matrix.scale] — a fresh private matrix, so scripted
   link/traffic events cannot leak between concurrently running
   points. *)

type prepared = {
  spec : Sweep_spec.t;
  pts : point array;
  hashes : string array;  (* hashes.(i) belongs to pts.(i) *)
  graphs : (string, Graph.t) Hashtbl.t;  (* builtin name -> topology *)
  scripts : (string, Script.t) Hashtbl.t;  (* file path -> parsed script *)
  templates : (string * int, Traffic_matrix.t) Hashtbl.t;
      (* (scenario, seed) -> unscaled demand template *)
}

let prepared_points prep = prep.pts

let point_hashes prep = prep.hashes

let builtin_graph name =
  match name with
  | "arpanet" -> Arpanet.topology ()
  | "milnet" -> Milnet.topology ()
  | other -> invalid_arg (Printf.sprintf "Sweep_engine: unknown builtin %S" other)

let builtin_peak name rng graph =
  match name with
  | "arpanet" -> Arpanet.peak_traffic rng graph
  | _ -> Milnet.peak_traffic rng graph

let prepare (spec : Sweep_spec.t) =
  let pts = Array.of_list (points spec) in
  let graphs = Hashtbl.create 4 in
  let scripts = Hashtbl.create 4 in
  let digests = Hashtbl.create 4 in
  List.iter
    (fun sc ->
      let name = Sweep_spec.scenario_name sc in
      if not (Hashtbl.mem digests name) then
        match sc with
        | Sweep_spec.Builtin b ->
          Hashtbl.add graphs name (builtin_graph b);
          Hashtbl.add digests name ("builtin:" ^ b)
        | Sweep_spec.File path ->
          let text = In_channel.with_open_text path In_channel.input_all in
          (match Script.parse text with
          | Ok s -> Hashtbl.add scripts name s
          | Error e ->
            invalid_arg (Printf.sprintf "Sweep_engine: scenario %S: %s" name e));
          Hashtbl.add digests name (Digest.to_hex (Digest.string text)))
    spec.scenarios;
  let templates = Hashtbl.create 16 in
  Array.iter
    (fun p ->
      let key = (p.scenario, p.seed) in
      if not (Hashtbl.mem templates key) then
        let template =
          match Hashtbl.find_opt scripts p.scenario with
          | None ->
            builtin_peak p.scenario (Rng.create p.seed)
              (Hashtbl.find graphs p.scenario)
          | Some script ->
            (* Per-seed demand jitter (±10 %, visiting flows in the
               matrix's deterministic iteration order) turns one scenario
               file into a small family of comparable traffic
               realisations; the point's load scale composes on top at
               dispatch time.  Scripted [scale] events stay relative to
               these demands. *)
            let rng = Rng.create p.seed in
            let template =
              Traffic_matrix.create ~nodes:(Traffic_matrix.nodes script.traffic)
            in
            Traffic_matrix.iter script.traffic (fun ~src ~dst demand ->
                let jitter = Rng.uniform rng ~lo:0.9 ~hi:1.1 in
                Traffic_matrix.set template ~src ~dst (demand *. jitter));
            template
        in
        Hashtbl.add templates key template)
    pts;
  let hashes =
    Array.map
      (fun p -> point_hash ~scenario_digest:(Hashtbl.find digests p.scenario) spec p)
      pts
  in
  { spec; pts; hashes; graphs; scripts; templates }

(* ---------------------------------------------------------------- *)
(* Running points.  Each point's simulator is private — built from the
   shared immutable spec plus one fresh scaled matrix — and runs with
   [~domains:1] so pools never nest. *)

let builtin_sim ?tracer prep p =
  let graph = Hashtbl.find prep.graphs p.scenario in
  let template = Hashtbl.find prep.templates (p.scenario, p.seed) in
  let traffic = Traffic_matrix.scale template p.scale in
  let sim = Flow_sim.create ~domains:1 ?tracer graph p.metric traffic in
  for _ = 1 to prep.spec.periods do
    ignore (Flow_sim.step sim)
  done;
  sim

let scripted_sim ?tracer prep p =
  let script = Hashtbl.find prep.scripts p.scenario in
  let template = Hashtbl.find prep.templates (p.scenario, p.seed) in
  let traffic = Traffic_matrix.scale template p.scale in
  Script.run ~domains:1 ?tracer ~metric:p.metric { script with traffic }
    ~periods:prep.spec.periods

let run_point ?tracer prep i =
  let p = prep.pts.(i) in
  let sim =
    if Hashtbl.mem prep.scripts p.scenario then scripted_sim ?tracer prep p
    else builtin_sim ?tracer prep p
  in
  let indicators = Flow_sim.indicators sim ~skip:prep.spec.warmup () in
  { point = p; hash = prep.hashes.(i); indicators }

(* ---------------------------------------------------------------- *)
(* Report assembly.  Per-point telemetry registries are a pure function
   of (point index, indicators) — [Measure.export] under a point label —
   so they are regenerated here rather than carried through shard files
   or resumes, and merged in point-index order: the report's bytes
   depend only on which points it covers, never on the domain count,
   the shard layout, or the order workers finished. *)

let point_registry p indicators =
  let registry = Obs_metrics.create () in
  Measure.export
    ~labels:[ ("point", Printf.sprintf "%05d" p.index) ]
    registry indicators;
  registry

let indicators_json (i : Measure.indicators) =
  Obs_json.Obj
    [ ("elapsed_s", Obs_json.Float i.elapsed_s);
      ("internode_traffic_bps", Obs_json.Float i.internode_traffic_bps);
      ("round_trip_delay_ms", Obs_json.Float i.round_trip_delay_ms);
      ("updates_per_s", Obs_json.Float i.updates_per_s);
      ("update_period_per_node_s", Obs_json.Float i.update_period_per_node_s);
      ("actual_path_hops", Obs_json.Float i.actual_path_hops);
      ("minimum_path_hops", Obs_json.Float i.minimum_path_hops);
      ("path_ratio", Obs_json.Float i.path_ratio);
      ("dropped_per_s", Obs_json.Float i.dropped_per_s);
      ("overhead_bps", Obs_json.Float i.overhead_bps);
      ("delay_p50_ms", Obs_json.Float i.delay_p50_ms);
      ("delay_p95_ms", Obs_json.Float i.delay_p95_ms);
      ("delay_p99_ms", Obs_json.Float i.delay_p99_ms);
      ("route_changes_per_period", Obs_json.Float i.route_changes_per_period);
      ("next_hop_flips_per_period", Obs_json.Float i.next_hop_flips_per_period);
      ("link_flips_per_period", Obs_json.Float i.link_flips_per_period)
    ]

let outcome_json o =
  Obs_json.Obj
    [ ("index", Obs_json.Int o.point.index);
      ("scenario", Obs_json.String o.point.scenario);
      ("metric", Obs_json.String (Metric.kind_name o.point.metric));
      ("scale", Obs_json.Float o.point.scale);
      ("seed", Obs_json.Int o.point.seed);
      ("hash", Obs_json.String o.hash);
      ("indicators", indicators_json o.indicators)
    ]

(* ---------------------------------------------------------------- *)
(* Summary views, computed purely from (spec, outcomes) so merged,
   sharded and resumed reports carry byte-identical sections. *)

(* Outcomes grouped by (scenario, metric), groups and members both in
   point-index order. *)
let outcome_groups outcomes =
  let table = Hashtbl.create 8 in
  let order = ref [] in
  Array.iter
    (fun o ->
      let key = (o.point.scenario, o.point.metric) in
      match Hashtbl.find_opt table key with
      | Some members -> members := o :: !members
      | None ->
        Hashtbl.add table key (ref [ o ]);
        order := key :: !order)
    outcomes;
  List.rev_map
    (fun key -> (key, List.rev !(Hashtbl.find table key)))
    !order
  |> List.rev

(* Rzepka & Chołda-style stability rankings: mean the three route-change
   counters per (scenario, metric), competition-rank each counter
   (1 + strictly-better count), and order by total score — the summary
   view of which metric churns routes least.  Ties keep spec order. *)
let rankings_of_outcomes outcomes =
  let mean f members =
    let sum = List.fold_left (fun s o -> s +. f o.indicators) 0. members in
    sum /. float_of_int (List.length members)
  in
  let rows =
    List.map
      (fun ((scenario, metric), members) ->
        ( scenario,
          metric,
          mean (fun i -> i.Measure.route_changes_per_period) members,
          mean (fun i -> i.Measure.next_hop_flips_per_period) members,
          mean (fun i -> i.Measure.link_flips_per_period) members ))
      (outcome_groups outcomes)
  in
  let rank_of value values =
    1 + List.length (List.filter (fun v -> v < value) values)
  in
  let col f = List.map f rows in
  let scored =
    List.map
      (fun (scenario, metric, rc, nh, lf) ->
        let score =
          rank_of rc (col (fun (_, _, v, _, _) -> v))
          + rank_of nh (col (fun (_, _, _, v, _) -> v))
          + rank_of lf (col (fun (_, _, _, _, v) -> v))
        in
        (score, scenario, metric, rc, nh, lf))
      rows
  in
  let sorted =
    List.stable_sort (fun (a, _, _, _, _, _) (b, _, _, _, _, _) -> compare a b)
      scored
  in
  List.mapi
    (fun pos (score, scenario, metric, rc, nh, lf) ->
      { r_scenario = scenario;
        r_metric = metric;
        r_rank = pos + 1;
        r_score = score;
        r_route_changes = rc;
        r_nh_flips = nh;
        r_link_flips = lf })
    sorted

(* Knee of a monotone-ish response curve: the point farthest (vertically,
   after normalizing both axes to [0,1]) from the chord between the
   curve's endpoints — the standard max-distance knee.  First maximal
   point wins, so ties resolve to the smallest scale. *)
let knee_of_curve xs ys =
  let n = Array.length xs in
  let dx = xs.(n - 1) -. xs.(0) and dy = ys.(n - 1) -. ys.(0) in
  let best = ref 0 and best_d = ref neg_infinity in
  for i = 0 to n - 1 do
    let xhat = (xs.(i) -. xs.(0)) /. dx in
    let yhat = if dy = 0. then 0. else (ys.(i) -. ys.(0)) /. dy in
    let d = Float.abs (yhat -. xhat) in
    if d > !best_d then begin
      best := i;
      best_d := d
    end
  done;
  (xs.(!best), ys.(!best))

(* The critical-load phase study: along a [critical_load] demand ramp,
   delay stays flat then turns up (its knee: where queueing takes over)
   while delivered throughput climbs then flattens (its knee: where the
   network saturates).  Per (scenario, metric) the per-scale seed means
   form the two curves; [knee_of_curve] locates each transition.  Only
   computed when the spec declared a ramp and at least 3 distinct scales
   are present. *)
let knees_of_outcomes (spec : Sweep_spec.t) outcomes =
  if spec.critical_load = None then []
  else
    List.filter_map
      (fun ((scenario, metric), members) ->
        let by_scale = Hashtbl.create 8 in
        let scale_order = ref [] in
        List.iter
          (fun o ->
            match Hashtbl.find_opt by_scale o.point.scale with
            | Some cell -> cell := o :: !cell
            | None ->
              Hashtbl.add by_scale o.point.scale (ref [ o ]);
              scale_order := o.point.scale :: !scale_order)
          members;
        let scales = List.sort compare !scale_order in
        if List.length scales < 3 then None
        else begin
          let mean f scale =
            let os = !(Hashtbl.find by_scale scale) in
            List.fold_left (fun s o -> s +. f o.indicators) 0. os
            /. float_of_int (List.length os)
          in
          let xs = Array.of_list scales in
          let delay =
            Array.of_list
              (List.map (mean (fun i -> i.Measure.round_trip_delay_ms)) scales)
          in
          let thru =
            Array.of_list
              (List.map
                 (mean (fun i -> i.Measure.internode_traffic_bps))
                 scales)
          in
          let k_scale_delay, k_delay_ms = knee_of_curve xs delay in
          let k_scale_throughput, k_throughput_bps = knee_of_curve xs thru in
          Some
            { k_scenario = scenario;
              k_metric = metric;
              k_scale_delay;
              k_scale_throughput;
              k_delay_ms;
              k_throughput_bps }
        end)
      (outcome_groups outcomes)

let ranking_json r =
  Obs_json.Obj
    [ ("scenario", Obs_json.String r.r_scenario);
      ("metric", Obs_json.String (Metric.kind_name r.r_metric));
      ("rank", Obs_json.Int r.r_rank);
      ("score", Obs_json.Int r.r_score);
      ("route_changes_per_period", Obs_json.Float r.r_route_changes);
      ("next_hop_flips_per_period", Obs_json.Float r.r_nh_flips);
      ("link_flips_per_period", Obs_json.Float r.r_link_flips)
    ]

let knee_json k =
  Obs_json.Obj
    [ ("scenario", Obs_json.String k.k_scenario);
      ("metric", Obs_json.String (Metric.kind_name k.k_metric));
      ("knee_scale_delay", Obs_json.Float k.k_scale_delay);
      ("knee_scale_throughput", Obs_json.Float k.k_scale_throughput);
      ("round_trip_delay_ms_at_knee", Obs_json.Float k.k_delay_ms);
      ("internode_traffic_bps_at_knee", Obs_json.Float k.k_throughput_bps)
    ]

let report_of_outcomes (spec : Sweep_spec.t) outcomes =
  let master = Obs_metrics.create () in
  Obs_metrics.set_meta master "tool" "arpanet_sweep";
  Obs_metrics.set_meta master "points" (string_of_int (Array.length outcomes));
  Obs_metrics.set_meta master "periods" (string_of_int spec.periods);
  Obs_metrics.set_meta master "warmup" (string_of_int spec.warmup);
  Array.iter
    (fun o -> Obs_metrics.merge ~into:master (point_registry o.point o.indicators))
    outcomes;
  let rankings = rankings_of_outcomes outcomes in
  let knees = knees_of_outcomes spec outcomes in
  (* Extra sections ride alongside "points"; [stored_points] reads only
     "points", so shards, merges and resumes are oblivious to them and
     every report path regenerates them from the same outcomes. *)
  let json =
    Obs_metrics.to_json master
      ~extra:
        (( "points",
           Obs_json.List (Array.to_list (Array.map outcome_json outcomes)) )
         :: ( "route_change_rankings",
              Obs_json.List (List.map ranking_json rankings) )
         ::
         (match knees with
          | [] -> []
          | ks -> [ ("critical_load", Obs_json.List (List.map knee_json ks)) ]))
  in
  { outcomes; json; rankings; knees }

(* ---------------------------------------------------------------- *)

let run_prepared ?(domains = Domain_pool.default_size ())
    ?(tracer = Tracer.null) ?subset ?reuse prep =
  let selected =
    match subset with
    | None -> Array.init (Array.length prep.pts) Fun.id
    | Some keep ->
      Array.of_list
        (List.filter (fun i -> keep prep.pts.(i))
           (List.init (Array.length prep.pts) Fun.id))
  in
  let slots = Array.make (Array.length selected) None in
  (* Points whose hash the caller already has an answer for are filled
     in up front and never dispatched — this is what makes [--resume]
     skip finished work. *)
  let todo =
    match reuse with
    | None -> Array.mapi (fun s i -> (s, i)) selected
    | Some lookup ->
      let pending = ref [] in
      Array.iteri
        (fun s i ->
          match lookup prep.hashes.(i) with
          | Some indicators ->
            slots.(s) <-
              Some { point = prep.pts.(i); hash = prep.hashes.(i); indicators }
          | None -> pending := (s, i) :: !pending)
        selected;
      Array.of_list (List.rev !pending)
  in
  let n = Array.length todo in
  (* Each point's whole simulation is one span on the track of whichever
     domain ran it, index range in the args — Perfetto shows the sweep's
     work distribution directly. *)
  let tr_point = Tracer.intern tracer "sweep_point" in
  let one k =
    let s, i = todo.(k) in
    Tracer.span_begin_range tracer tr_point ~lo:i ~hi:(i + 1);
    let o = run_point ~tracer prep i in
    Tracer.span_end tracer tr_point;
    slots.(s) <- Some o
  in
  (if domains > 1 && n > 1 then (
     let pool = Domain_pool.create domains in
     if Tracer.enabled tracer then
       Domain_pool.set_probe pool (Some (Tracer.pool_probe tracer));
     (* Grid points are wildly uneven — a hier10k point can cost 1000×
        an arpanet toy — so handout is work-stealing, not static
        chunks: a domain that lands a heavy point keeps it while the
        others drain and then steal the rest of its share. *)
     Fun.protect
       ~finally:(fun () -> Domain_pool.shutdown pool)
       (fun () -> Domain_pool.parallel_for_dynamic pool n one))
   else
     for k = 0 to n - 1 do
       one k
     done);
  let outcomes =
    Array.map
      (function
        | Some o -> o
        | None -> invalid_arg "Sweep_engine: point did not complete")
      slots
  in
  report_of_outcomes prep.spec outcomes

let run ?domains ?tracer spec = run_prepared ?domains ?tracer (prepare spec)

(* ---------------------------------------------------------------- *)
(* Reading reports back.  Shards and resumes only need each stored
   point's (hash, indicators): registries regenerate from indicators,
   and grid coordinates come from the prepared spec, not the file.
   Floats survive the trip exactly — the printer emits the shortest
   representation that round-trips — so a merged or resumed report is
   byte-identical to an uninterrupted run. *)

let ( let* ) = Result.bind

let float_field name j =
  match Obs_json.member name j with
  | Error _ -> Result.Error (Printf.sprintf "missing indicator %S" name)
  | Ok Obs_json.Null -> Ok Float.nan (* the printer maps NaN to null *)
  | Ok v ->
    (match Obs_json.to_float v with
    | Ok f -> Ok f
    | Error _ -> Result.Error (Printf.sprintf "indicator %S is not a number" name))

let indicators_of_json j : (Measure.indicators, string) result =
  let* elapsed_s = float_field "elapsed_s" j in
  let* internode_traffic_bps = float_field "internode_traffic_bps" j in
  let* round_trip_delay_ms = float_field "round_trip_delay_ms" j in
  let* updates_per_s = float_field "updates_per_s" j in
  let* update_period_per_node_s = float_field "update_period_per_node_s" j in
  let* actual_path_hops = float_field "actual_path_hops" j in
  let* minimum_path_hops = float_field "minimum_path_hops" j in
  let* path_ratio = float_field "path_ratio" j in
  let* dropped_per_s = float_field "dropped_per_s" j in
  let* overhead_bps = float_field "overhead_bps" j in
  let* delay_p50_ms = float_field "delay_p50_ms" j in
  let* delay_p95_ms = float_field "delay_p95_ms" j in
  let* delay_p99_ms = float_field "delay_p99_ms" j in
  let* route_changes_per_period = float_field "route_changes_per_period" j in
  let* next_hop_flips_per_period = float_field "next_hop_flips_per_period" j in
  let* link_flips_per_period = float_field "link_flips_per_period" j in
  Ok
    { Measure.elapsed_s;
      internode_traffic_bps;
      round_trip_delay_ms;
      updates_per_s;
      update_period_per_node_s;
      actual_path_hops;
      minimum_path_hops;
      path_ratio;
      dropped_per_s;
      overhead_bps;
      delay_p50_ms;
      delay_p95_ms;
      delay_p99_ms;
      route_changes_per_period;
      next_hop_flips_per_period;
      link_flips_per_period }

let stored_points json =
  let* pts =
    match Obs_json.member "points" json with
    | Ok (Obs_json.List pts) -> Ok pts
    | Ok _ -> Result.Error "report \"points\" is not a list"
    | Error _ -> Result.Error "report has no \"points\" list"
  in
  let rec decode k acc = function
    | [] -> Ok (List.rev acc)
    | item :: rest ->
      let ctx msg = Printf.sprintf "points[%d]: %s" k msg in
      let* hash =
        match Obs_json.member "hash" item with
        | Ok (Obs_json.String h) -> Ok h
        | Ok _ -> Result.Error (ctx "\"hash\" is not a string")
        | Error _ -> Result.Error (ctx "missing \"hash\"")
      in
      let* indicators =
        match Obs_json.member "indicators" item with
        | Ok ind -> Result.map_error ctx (indicators_of_json ind)
        | Error _ -> Result.Error (ctx "missing \"indicators\"")
      in
      decode (k + 1) ((hash, indicators) :: acc) rest
  in
  decode 0 [] pts

(* ---------------------------------------------------------------- *)
(* Merging shard reports.  Points are matched purely by hash; the
   prepared spec supplies order and coordinates, so merge order — and
   any intermediate partial merge — cannot change the result. *)

let merge ?(allow_partial = false) prep shards =
  let table = Hashtbl.create (Array.length prep.pts) in
  let known = Hashtbl.create (Array.length prep.pts) in
  Array.iter (fun h -> Hashtbl.replace known h ()) prep.hashes;
  let rec gather k = function
    | [] -> Ok ()
    | shard :: rest ->
      let* pts = Result.map_error (Printf.sprintf "shard %d: %s" k) (stored_points shard) in
      let* () =
        List.fold_left
          (fun acc (hash, indicators) ->
            let* () = acc in
            if not (Hashtbl.mem known hash) then
              Result.Error
                (Printf.sprintf
                   "shard %d: point %s is not in this spec's grid (spec or \
                    scenario changed since the shard was written?)"
                   k hash)
            else
              match Hashtbl.find_opt table hash with
              | None ->
                Hashtbl.add table hash indicators;
                Ok ()
              | Some prev ->
                (* Runs are deterministic, so a point appearing in two
                   shards must agree; disagreement means the shards came
                   from different builds or scenarios. *)
                if
                  Obs_json.to_string (indicators_json prev)
                  = Obs_json.to_string (indicators_json indicators)
                then Ok ()
                else
                  Result.Error
                    (Printf.sprintf
                       "shard %d: point %s conflicts with an earlier shard" k
                       hash))
          (Ok ()) pts
      in
      gather (k + 1) rest
  in
  let* () = gather 0 shards in
  let present = ref [] in
  let missing = ref 0 in
  Array.iteri
    (fun i p ->
      match Hashtbl.find_opt table prep.hashes.(i) with
      | Some indicators ->
        present := { point = p; hash = prep.hashes.(i); indicators } :: !present
      | None -> incr missing)
    prep.pts;
  if !missing > 0 && not allow_partial then
    Result.Error
      (Printf.sprintf "%d of %d grid points missing from the given shards"
         !missing (Array.length prep.pts))
  else Ok (report_of_outcomes prep.spec (Array.of_list (List.rev !present)))

(* ---------------------------------------------------------------- *)

let csv_columns =
  [ "index"; "scenario"; "metric"; "scale"; "seed"; "elapsed_s";
    "internode_traffic_bps"; "round_trip_delay_ms"; "updates_per_s";
    "update_period_per_node_s"; "actual_path_hops"; "minimum_path_hops";
    "path_ratio"; "dropped_per_s"; "overhead_bps"; "delay_p50_ms";
    "delay_p95_ms"; "delay_p99_ms"; "route_changes_per_period";
    "next_hop_flips_per_period"; "link_flips_per_period" ]

let csv report =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," csv_columns);
  Buffer.add_char buf '\n';
  let num x = Obs_json.to_string (Obs_json.Float x) in
  Array.iter
    (fun o ->
      let i = o.indicators in
      [ string_of_int o.point.index; o.point.scenario;
        Metric.kind_name o.point.metric; num o.point.scale;
        string_of_int o.point.seed; num i.elapsed_s;
        num i.internode_traffic_bps; num i.round_trip_delay_ms;
        num i.updates_per_s; num i.update_period_per_node_s;
        num i.actual_path_hops; num i.minimum_path_hops; num i.path_ratio;
        num i.dropped_per_s; num i.overhead_bps; num i.delay_p50_ms;
        num i.delay_p95_ms; num i.delay_p99_ms;
        num i.route_changes_per_period; num i.next_hop_flips_per_period;
        num i.link_flips_per_period ]
      |> String.concat "," |> Buffer.add_string buf;
      Buffer.add_char buf '\n')
    report.outcomes;
  Buffer.contents buf

let summary_columns =
  [ "kind"; "scenario"; "metric"; "rank"; "score";
    "route_changes_per_period"; "next_hop_flips_per_period";
    "link_flips_per_period"; "knee_scale_delay"; "knee_scale_throughput";
    "round_trip_delay_ms_at_knee"; "internode_traffic_bps_at_knee" ]

let summary_csv report =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (String.concat "," summary_columns);
  Buffer.add_char buf '\n';
  let num x = Obs_json.to_string (Obs_json.Float x) in
  List.iter
    (fun r ->
      [ "ranking"; r.r_scenario; Metric.kind_name r.r_metric;
        string_of_int r.r_rank; string_of_int r.r_score;
        num r.r_route_changes; num r.r_nh_flips; num r.r_link_flips;
        ""; ""; ""; "" ]
      |> String.concat "," |> Buffer.add_string buf;
      Buffer.add_char buf '\n')
    report.rankings;
  List.iter
    (fun k ->
      [ "knee"; k.k_scenario; Metric.kind_name k.k_metric; ""; ""; ""; "";
        ""; num k.k_scale_delay; num k.k_scale_throughput;
        num k.k_delay_ms; num k.k_throughput_bps ]
      |> String.concat "," |> Buffer.add_string buf;
      Buffer.add_char buf '\n')
    report.knees;
  Buffer.contents buf

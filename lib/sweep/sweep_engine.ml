open! Import

type point = {
  index : int;
  scenario : string;
  metric : Metric.kind;
  scale : float;
  seed : int;
}

type outcome = { point : point; indicators : Measure.indicators }

type report = { outcomes : outcome array; json : Obs_json.t }

let points (spec : Sweep_spec.t) =
  (* Fixed axis nesting — scenario outermost, seed innermost — so a
     spec always enumerates the same grid in the same order no matter
     how the run is parallelized. *)
  let acc = ref [] in
  let index = ref 0 in
  List.iter
    (fun sc ->
      let scenario = Sweep_spec.scenario_name sc in
      List.iter
        (fun metric ->
          List.iter
            (fun scale ->
              List.iter
                (fun seed ->
                  acc := { index = !index; scenario; metric; scale; seed } :: !acc;
                  incr index)
                spec.seeds)
            spec.scales)
        spec.metrics)
    spec.scenarios;
  List.rev !acc

(* Scenario files are read once up front; each point re-parses the
   cached text so every simulator owns a private graph and traffic
   matrix — scripted link failures must not leak between concurrently
   running points. *)
let preload_texts (spec : Sweep_spec.t) =
  let texts = Hashtbl.create 4 in
  List.iter
    (function
      | Sweep_spec.Builtin _ -> ()
      | Sweep_spec.File path ->
        if not (Hashtbl.mem texts path) then
          Hashtbl.add texts path
            (In_channel.with_open_text path In_channel.input_all))
    spec.scenarios;
  texts

let builtin_sim ?tracer (spec : Sweep_spec.t) p =
  let graph =
    match p.scenario with
    | "arpanet" -> Arpanet.topology ()
    | "milnet" -> Milnet.topology ()
    | other -> invalid_arg (Printf.sprintf "Sweep_engine: unknown builtin %S" other)
  in
  let peak =
    match p.scenario with
    | "arpanet" -> Arpanet.peak_traffic (Rng.create p.seed) graph
    | _ -> Milnet.peak_traffic (Rng.create p.seed) graph
  in
  let traffic = Traffic_matrix.scale peak p.scale in
  let sim = Flow_sim.create ~domains:1 ?tracer graph p.metric traffic in
  for _ = 1 to spec.periods do
    ignore (Flow_sim.step sim)
  done;
  sim

let scripted_sim ?tracer (spec : Sweep_spec.t) texts p =
  let text = Hashtbl.find texts p.scenario in
  let script =
    match Script.parse text with
    | Ok s -> s
    | Error e ->
      invalid_arg (Printf.sprintf "Sweep_engine: scenario %S: %s" p.scenario e)
  in
  (* Per-seed demand jitter (±10 %, visiting flows in the matrix's
     deterministic iteration order) turns one scenario file into a small
     family of comparable traffic realisations; the load scale composes
     on top.  Scripted [scale] events stay relative to these demands. *)
  let rng = Rng.create p.seed in
  let traffic = Traffic_matrix.create ~nodes:(Traffic_matrix.nodes script.traffic) in
  Traffic_matrix.iter script.traffic (fun ~src ~dst demand ->
      let jitter = Rng.uniform rng ~lo:0.9 ~hi:1.1 in
      Traffic_matrix.set traffic ~src ~dst (demand *. jitter *. p.scale));
  Script.run ~domains:1 ?tracer ~metric:p.metric { script with traffic }
    ~periods:spec.periods

let run_point ?tracer (spec : Sweep_spec.t) texts p =
  let sim =
    match p.scenario with
    | "arpanet" | "milnet" -> builtin_sim ?tracer spec p
    | _ -> scripted_sim ?tracer spec texts p
  in
  let indicators = Flow_sim.indicators sim ~skip:spec.warmup () in
  let registry = Obs_metrics.create () in
  Measure.export
    ~labels:[ ("point", Printf.sprintf "%05d" p.index) ]
    registry indicators;
  ({ point = p; indicators }, registry)

let indicators_json (i : Measure.indicators) =
  Obs_json.Obj
    [ ("elapsed_s", Obs_json.Float i.elapsed_s);
      ("internode_traffic_bps", Obs_json.Float i.internode_traffic_bps);
      ("round_trip_delay_ms", Obs_json.Float i.round_trip_delay_ms);
      ("updates_per_s", Obs_json.Float i.updates_per_s);
      ("update_period_per_node_s", Obs_json.Float i.update_period_per_node_s);
      ("actual_path_hops", Obs_json.Float i.actual_path_hops);
      ("minimum_path_hops", Obs_json.Float i.minimum_path_hops);
      ("path_ratio", Obs_json.Float i.path_ratio);
      ("dropped_per_s", Obs_json.Float i.dropped_per_s);
      ("overhead_bps", Obs_json.Float i.overhead_bps);
      ("delay_p50_ms", Obs_json.Float i.delay_p50_ms);
      ("delay_p95_ms", Obs_json.Float i.delay_p95_ms);
      ("delay_p99_ms", Obs_json.Float i.delay_p99_ms);
      ("route_changes_per_period", Obs_json.Float i.route_changes_per_period);
      ("next_hop_flips_per_period", Obs_json.Float i.next_hop_flips_per_period);
      ("link_flips_per_period", Obs_json.Float i.link_flips_per_period)
    ]

let outcome_json o =
  Obs_json.Obj
    [ ("index", Obs_json.Int o.point.index);
      ("scenario", Obs_json.String o.point.scenario);
      ("metric", Obs_json.String (Metric.kind_name o.point.metric));
      ("scale", Obs_json.Float o.point.scale);
      ("seed", Obs_json.Int o.point.seed);
      ("indicators", indicators_json o.indicators)
    ]

let run ?(domains = Domain_pool.default_size ()) ?(tracer = Tracer.null)
    (spec : Sweep_spec.t) =
  let pts = Array.of_list (points spec) in
  let texts = preload_texts spec in
  let n = Array.length pts in
  let slots = Array.make n None in
  (* Each point's whole simulation is one span on the track of whichever
     domain ran it, index range in the args — Perfetto shows the sweep's
     work distribution directly. *)
  let tr_point = Tracer.intern tracer "sweep_point" in
  let one i =
    Tracer.span_begin_range tracer tr_point ~lo:i ~hi:(i + 1);
    let r = run_point ~tracer spec texts pts.(i) in
    Tracer.span_end tracer tr_point;
    slots.(i) <- Some r
  in
  (if domains > 1 && n > 1 then (
     let pool = Domain_pool.create domains in
     if Tracer.enabled tracer then
       Domain_pool.set_probe pool (Some (Tracer.pool_probe tracer));
     Fun.protect
       ~finally:(fun () -> Domain_pool.shutdown pool)
       (fun () -> Domain_pool.parallel_for pool n one))
   else
     for i = 0 to n - 1 do
       one i
     done);
  let outcomes =
    Array.map
      (function
        | Some (o, _) -> o
        | None -> invalid_arg "Sweep_engine: point did not complete")
      slots
  in
  (* One registry per point, merged in point-index order: the report's
     bytes depend only on the grid, never on the domain count or the
     order workers finished.  Deliberately no domain/core metadata in
     the report itself — that lives in the bench records. *)
  let master = Obs_metrics.create () in
  Obs_metrics.set_meta master "tool" "arpanet_sweep";
  Obs_metrics.set_meta master "points" (string_of_int n);
  Obs_metrics.set_meta master "periods" (string_of_int spec.periods);
  Obs_metrics.set_meta master "warmup" (string_of_int spec.warmup);
  Array.iter
    (function
      | Some (_, registry) -> Obs_metrics.merge ~into:master registry
      | None -> ())
    slots;
  let json =
    Obs_metrics.to_json master
      ~extra:
        [ ("points", Obs_json.List (Array.to_list (Array.map outcome_json outcomes)))
        ]
  in
  { outcomes; json }

let csv_columns =
  [ "index"; "scenario"; "metric"; "scale"; "seed"; "elapsed_s";
    "internode_traffic_bps"; "round_trip_delay_ms"; "updates_per_s";
    "update_period_per_node_s"; "actual_path_hops"; "minimum_path_hops";
    "path_ratio"; "dropped_per_s"; "overhead_bps"; "delay_p50_ms";
    "delay_p95_ms"; "delay_p99_ms"; "route_changes_per_period";
    "next_hop_flips_per_period"; "link_flips_per_period" ]

let csv report =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," csv_columns);
  Buffer.add_char buf '\n';
  let num x = Obs_json.to_string (Obs_json.Float x) in
  Array.iter
    (fun o ->
      let i = o.indicators in
      [ string_of_int o.point.index; o.point.scenario;
        Metric.kind_name o.point.metric; num o.point.scale;
        string_of_int o.point.seed; num i.elapsed_s;
        num i.internode_traffic_bps; num i.round_trip_delay_ms;
        num i.updates_per_s; num i.update_period_per_node_s;
        num i.actual_path_hops; num i.minimum_path_hops; num i.path_ratio;
        num i.dropped_per_s; num i.overhead_bps; num i.delay_p50_ms;
        num i.delay_p95_ms; num i.delay_p99_ms;
        num i.route_changes_per_period; num i.next_hop_flips_per_period;
        num i.link_flips_per_period ]
      |> String.concat "," |> Buffer.add_string buf;
      Buffer.add_char buf '\n')
    report.outcomes;
  Buffer.contents buf

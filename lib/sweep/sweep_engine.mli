open! Import

(** The parallel scenario-sweep engine behind [arpanet_sweep].

    A {!Sweep_spec.t} declares a grid of (scenario × metric × load scale
    × seed) points; {!run} executes every point — each its own flow
    simulator over [periods] routing periods — fanning points across a
    {!Domain_pool} and folding the results into one report.

    Determinism is load-bearing: points are enumerated in a fixed axis
    order, every point builds a private graph and traffic matrix from
    its own seed, per-point telemetry registries are merged in point
    order (not completion order), and the report carries no domain or
    core counts — so the report is {e byte-identical} under any
    [domains] setting.  [test_sweep] pins this. *)

type point = {
  index : int;  (** position in the {!points} enumeration *)
  scenario : string;  (** builtin name or scenario-file path *)
  metric : Metric.kind;
  scale : float;
  seed : int;
}

type outcome = { point : point; indicators : Measure.indicators }

type report = {
  outcomes : outcome array;  (** one per point, in index order *)
  json : Obs_json.t;
      (** merged telemetry snapshot plus a ["points"] array of per-point
          indicator objects *)
}

val points : Sweep_spec.t -> point list
(** The grid in execution order: scenarios outermost, then metrics,
    scales, seeds. *)

val run : ?domains:int -> ?tracer:Tracer.t -> Sweep_spec.t -> report
(** Run every point.  [domains] (default {!Domain_pool.default_size})
    sizes the pool points are distributed over; each point's simulator
    runs with [~domains:1] so pools never nest.  Scenario files are read
    once and re-parsed per point, keeping concurrently running points
    free of shared mutable state.

    [tracer] (default {!Tracer.null}) flight-records the sweep: each
    point becomes a ["sweep_point"] span (point index in its args) on the
    track of whichever worker domain ran it, the pool's chunk draining is
    probed, and inside every point the simulator's routing periods, SPF
    refreshes and floods record as usual.  The tracer never influences
    the report — reports stay byte-identical with or without one.
    @raise Invalid_argument if a scenario file fails to parse (lint
    first — [arpanet_sweep] does) and [Sys_error] if one is unreadable. *)

val csv : report -> string
(** One header line plus one row per point: grid coordinates, the ten
    Table-1 indicator columns, the streamed one-way delay percentiles
    (p50/p95/p99, ms) and the per-period route-change counters (routes
    changed, A→B→A next-hop flips, per-link cost direction flips). *)

open! Import

(** The parallel scenario-sweep fabric behind [arpanet_sweep].

    A {!Sweep_spec.t} declares a grid of (scenario × metric × load scale
    × seed) points.  {!prepare} parses every scenario {e once} into an
    immutable shared spec — topology, parsed script, per-(scenario, seed)
    traffic template — and stamps each point with a stable content hash;
    {!run_prepared} then executes points (each its own flow simulator
    over [periods] routing periods) over a work-stealing
    {!Domain_pool.parallel_for_dynamic} handout and folds the results
    into one report.  {!merge} rebuilds the same report from shard files,
    and the [?reuse] hook skips points an earlier report already
    answers — both keyed by the point hash.

    Determinism is load-bearing: points are enumerated in a fixed axis
    order, each runs against a private scaled copy of the shared traffic
    template, per-point telemetry registries are regenerated from
    indicators and merged in point order (not completion order), and the
    report carries no domain or core counts — so the report is
    {e byte-identical} under any [domains] setting, shard layout, or
    resume history.  [test_sweep] pins this. *)

type point = {
  index : int;  (** position in the {!points} enumeration *)
  scenario : string;  (** builtin name or scenario-file path *)
  metric : Metric.kind;
  scale : float;
  seed : int;
}

type outcome = {
  point : point;
  hash : string;  (** the point's stable identity; see {!point_hashes} *)
  indicators : Measure.indicators;
}

(** One (scenario, metric) row of the Rzepka & Chołda-style
    route-stability ranking: each of the three change counters is
    averaged over the group's points and competition-ranked against the
    other groups (rank 1 + number of strictly smaller means); [r_score]
    sums the three per-counter ranks and [r_rank] is the row's 1-based
    position when ordered by score (ties keep spec order). *)
type ranking = {
  r_scenario : string;
  r_metric : Metric.kind;
  r_rank : int;
  r_score : int;
  r_route_changes : float;  (** mean route_changes_per_period *)
  r_nh_flips : float;  (** mean next_hop_flips_per_period *)
  r_link_flips : float;  (** mean link_flips_per_period *)
}

(** Where a (scenario, metric) pair's behaviour changes phase along a
    {!Sweep_spec.ramp}: the scale at which the round-trip-delay curve
    turns up ([k_scale_delay]) and the one at which delivered throughput
    flattens ([k_scale_throughput]), each located as the point farthest
    from the chord between the (seed-averaged, normalized) curve's
    endpoints.  Present only when the spec declared [critical_load] and
    the group covers at least 3 distinct scales. *)
type knee = {
  k_scenario : string;
  k_metric : Metric.kind;
  k_scale_delay : float;
  k_scale_throughput : float;
  k_delay_ms : float;  (** round_trip_delay_ms at [k_scale_delay] *)
  k_throughput_bps : float;
      (** internode_traffic_bps at [k_scale_throughput] *)
}

type report = {
  outcomes : outcome array;  (** one per covered point, in index order *)
  json : Obs_json.t;
      (** merged telemetry snapshot plus a ["points"] array of per-point
          indicator objects (each carrying its ["hash"]), a
          ["route_change_rankings"] section, and — under a
          [critical_load] ramp — a ["critical_load"] knee section *)
  rankings : ranking list;  (** ordered by score, most stable first *)
  knees : knee list;  (** in spec group order; [] without a ramp *)
}

val points : Sweep_spec.t -> point list
(** The grid in execution order: scenarios outermost, then metrics,
    scales, seeds. *)

(** {2 Parse-once preparation} *)

type prepared
(** A spec parsed once into immutable shared state: builtin topologies,
    parsed scenario scripts, per-(scenario, seed) demand templates, and
    per-point hashes.  All domains read it concurrently; nothing in it
    is written after {!prepare} returns. *)

val prepare : Sweep_spec.t -> prepared
(** Read and parse every scenario a single time and precompute the
    demand template for every (scenario, seed) pair.
    @raise Invalid_argument if a scenario file fails to parse (lint
    first — [arpanet_sweep] does) and [Sys_error] if one is
    unreadable. *)

val prepared_points : prepared -> point array

val point_hashes : prepared -> string array
(** [point_hashes prep].(i) identifies [prepared_points prep].(i): the
    MD5 of (scenario {e content} digest × scenario × metric × scale ×
    seed × periods × warmup) under a version tag.  Grid-shape
    independent — the same point keeps its hash when axes are added or
    the grid is re-sharded — and content-sensitive: editing a scenario
    file invalidates its points. *)

(** {2 Running} *)

val run_prepared :
  ?domains:int ->
  ?tracer:Tracer.t ->
  ?subset:(point -> bool) ->
  ?reuse:(string -> Measure.indicators option) ->
  prepared ->
  report
(** Run every prepared point and assemble the report.

    [domains] (default {!Domain_pool.default_size}) sizes the pool
    points are distributed over — with a work-stealing handout, so
    heavy points don't serialize a static share behind them; each
    point's simulator runs with [~domains:1] so pools never nest.

    [subset] (default: everything) restricts the run to the points it
    accepts — the [--shard i/n] primitive.  Excluded points simply do
    not appear in the report; indices and hashes keep their full-grid
    values.

    [reuse] is consulted once per selected point with the point's hash;
    returning [Some indicators] adopts that answer without simulating —
    the [--resume] primitive.  Because registries regenerate from
    indicators, a resumed report is byte-identical to a fresh run.

    [tracer] (default {!Tracer.null}) flight-records the sweep: each
    simulated point becomes a ["sweep_point"] span (point index in its
    args) on the track of whichever worker domain ran it, the pool's
    block draining is probed, and inside every point the simulator's
    routing periods, SPF refreshes and floods record as usual.  The
    tracer never influences the report. *)

val run : ?domains:int -> ?tracer:Tracer.t -> Sweep_spec.t -> report
(** [run spec = run_prepared (prepare spec)]. *)

(** {2 Shards and resumes} *)

val stored_points :
  Obs_json.t -> ((string * Measure.indicators) list, string) result
(** Decode a report (or shard) produced by this module back into its
    (hash, indicators) pairs — everything a merge or resume needs.
    Floats round-trip exactly through the deterministic printer, so
    re-emitting a stored point is byte-stable. *)

val merge :
  ?allow_partial:bool -> prepared -> Obs_json.t list -> (report, string) result
(** Fold shard reports into one report for the prepared grid.  Points
    are matched purely by hash, so merge order and grouping cannot
    change the bytes: merging shards one at a time through partial
    intermediates equals merging them all at once.  Errors: a shard
    that does not decode, a hash outside the prepared grid (the spec or
    a scenario changed since the shard was written), two shards
    disagreeing about a point, or — unless [allow_partial] (default
    false) — grid points covered by no shard. *)

val csv : report -> string
(** One header line plus one row per point: grid coordinates, the ten
    Table-1 indicator columns, the streamed one-way delay percentiles
    (p50/p95/p99, ms) and the per-period route-change counters (routes
    changed, A→B→A next-hop flips, per-link cost direction flips). *)

val summary_csv : report -> string
(** The summary views as one CSV: a ["ranking"] row per
    (scenario, metric) with the route-change means, ranks and score,
    then a ["knee"] row per located critical-load knee.  Columns not
    applicable to a row's kind are empty.  Like the report itself, a
    pure function of the covered points — byte-identical across domain
    counts, shards and resumes. *)

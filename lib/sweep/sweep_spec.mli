open! Import

(** Declarative sweep specifications: the grid a scenario sweep runs.

    A spec is a small JSON object naming four axes — scenarios, metrics,
    load scales, seeds — plus a period budget; the engine runs their
    cartesian product:

    {v
    {
      "scenarios": ["arpanet", "scenarios/two_region.scn"],
      "metrics":   ["dspf", "hnspf"],
      "scales":    [0.6, 1.0, 1.25],
      "seeds":     {"from": 1, "count": 4},
      "periods":   60,
      "warmup":    10
    }
    v}

    Scenario strings are either a builtin topology name ([arpanet],
    [milnet] — a synthesized peak-hour matrix derived from the point's
    seed) or a path to a {!Routing_sim.Script} scenario file (demands
    jittered per seed).  [metrics] defaults to [\["hnspf"\]], [scales]
    to [\[1.0\]], [seeds] to [\[0\]], [periods] to [60], [warmup]
    to [0].

    {!lint} reports every problem with a stable [S1xx] diagnostic code
    (catalogued in DESIGN.md §8) so [arpanet_sweep] and [routing_check]
    agree on what a broken spec looks like. *)

type scenario =
  | Builtin of string  (** ["arpanet"] or ["milnet"] *)
  | File of string  (** a scenario-script path *)

(** A [critical_load] demand ramp: instead of listing [scales]
    explicitly, the spec names an interval and a step count —
    [{"critical_load": {"from": 0.5, "to": 3.0, "steps": 8}}] ([steps]
    defaults to 8) — and the parser expands it into [steps] evenly
    spaced scales.  The engine then locates the delay and throughput
    knees along the ramp per (scenario, metric) and publishes them in
    the report ({!Sweep_engine.report}).  Mutually exclusive with an
    explicit ["scales"] list. *)
type ramp = { ramp_from : float; ramp_to : float; ramp_steps : int }

type t = {
  scenarios : scenario list;
  metrics : Metric.kind list;
  scales : float list;
      (** explicit, or generated from [critical_load] when set *)
  seeds : int list;
  periods : int;  (** routing periods per point *)
  warmup : int;  (** leading periods excluded from indicators *)
  critical_load : ramp option;
      (** set iff the scale axis came from a ramp; asks the engine for
          knee detection *)
}

type severity = Error | Warning

type issue = { severity : severity; code : string; message : string }

val scenario_name : scenario -> string
(** The spec string the scenario came from — point labels and reports. *)

val parse : string -> (t, issue) result
(** Decode spec text.  Any shape problem — invalid JSON, wrong field
    type, unknown metric name — is one [S100] error. *)

val lint : t -> issue list
(** Every grid problem, in axis order: [S101] unknown scenario (no such
    builtin, missing or unparseable file), [S102] empty axis, [S103]
    duplicate axis value (warning), [S104] bad seed, [S105] scale out of
    range, [S106] bad period/warmup budget, [S109] degenerate
    [critical_load] ramp (fewer than 3 steps, or a non-increasing
    interval). *)

val shard_of_string : string -> (int * int, issue) result
(** Parse a [--shard] argument ["I/N"] — this process runs grid points
    whose index ≡ I (mod N).  Any shape problem — not [I/N], [N < 1],
    [I] outside [\[0, N)] — is one [S107] error. *)

val lint_file : string -> issue list * t option
(** Read, {!parse}, {!lint}; unreadable files are an [S100] error and
    [None]. *)

val load : string -> (t, string) result
(** {!lint_file}, failing with the first error-severity issue. *)

val errors : issue list -> issue list
(** The error-severity subset — what blocks a run. *)

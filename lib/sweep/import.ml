(* Substrate aliases opened by every module in this library. *)

module Node = Routing_topology.Node
module Link = Routing_topology.Link
module Graph = Routing_topology.Graph
module Traffic_matrix = Routing_topology.Traffic_matrix
module Arpanet = Routing_topology.Arpanet
module Milnet = Routing_topology.Milnet
module Rng = Routing_stats.Rng
module Metric = Routing_metric.Metric
module Domain_pool = Routing_metric.Domain_pool
module Flow_sim = Routing_sim.Flow_sim
module Script = Routing_sim.Script
module Measure = Routing_sim.Measure
module Obs_json = Routing_obs.Json
module Obs_metrics = Routing_obs.Metrics
module Tracer = Routing_obs.Tracer

open! Import

type scenario = Builtin of string | File of string

type ramp = { ramp_from : float; ramp_to : float; ramp_steps : int }

type t = {
  scenarios : scenario list;
  metrics : Metric.kind list;
  scales : float list;
  seeds : int list;
  periods : int;
  warmup : int;
  critical_load : ramp option;
}

type severity = Error | Warning

type issue = { severity : severity; code : string; message : string }

let error code fmt = Printf.ksprintf (fun message -> { severity = Error; code; message }) fmt

let warning code fmt =
  Printf.ksprintf (fun message -> { severity = Warning; code; message }) fmt

let errors issues = List.filter (fun i -> i.severity = Error) issues

let scenario_name = function Builtin n -> n | File p -> p

let builtins = [ "arpanet"; "milnet" ]

let scenario_of_string s =
  if List.mem s builtins then Builtin s else File s

(* ---------------------------------------------------------------- *)
(* Parsing.  The spec is a small JSON object; every shape problem is one
   S100, so a typo'd spec reads as a single actionable message rather
   than a cascade. *)

let ( let* ) = Result.bind

let str_list field json =
  match Obs_json.member field json with
  | Error _ -> Ok None
  | Ok (Obs_json.List items) ->
    let* strings =
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* s = Obs_json.to_str item in
          Ok (s :: acc))
        (Ok []) items
    in
    Ok (Some (List.rev strings))
  | Ok _ -> Result.Error (Printf.sprintf "%S must be a list of strings" field)

let float_list field json =
  match Obs_json.member field json with
  | Error _ -> Ok None
  | Ok (Obs_json.List items) ->
    let* floats =
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* f = Obs_json.to_float item in
          Ok (f :: acc))
        (Ok []) items
    in
    Ok (Some (List.rev floats))
  | Ok _ -> Result.Error (Printf.sprintf "%S must be a list of numbers" field)

let int_field ~default field json =
  match Obs_json.member field json with
  | Error _ -> Ok default
  | Ok v ->
    (match Obs_json.to_int v with
     | Ok n -> Ok n
     | Error _ -> Result.Error (Printf.sprintf "%S must be an integer" field))

(* [seeds] is either an explicit list or a [{"from": n, "count": m}]
   range; ranges keep big sweeps readable. *)
let seeds_field json =
  match Obs_json.member "seeds" json with
  | Error _ -> Ok [ 0 ]
  | Ok (Obs_json.List items) ->
    let* seeds =
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          match Obs_json.to_int item with
          | Ok n -> Ok (n :: acc)
          | Error _ -> Result.Error "\"seeds\" entries must be integers")
        (Ok []) items
    in
    Ok (List.rev seeds)
  | Ok (Obs_json.Obj _ as range) ->
    let* from = int_field ~default:0 "from" range in
    let* count =
      match Obs_json.member "count" range with
      | Error _ -> Result.Error "seed range needs a \"count\" field"
      | Ok v ->
        (match Obs_json.to_int v with
         | Ok n -> Ok n
         | Error _ -> Result.Error "\"count\" must be an integer")
    in
    (* A degenerate range still parses; lint flags it as S104 so the
       grid-shape report can point at the axis rather than the parser. *)
    if count <= 0 then Ok []
    else Ok (List.init count (fun i -> from + i))
  | Ok _ -> Result.Error "\"seeds\" must be a list of integers or {\"from\",\"count\"}"

(* The [critical_load] ramp expands into an evenly spaced scale grid at
   parse time, so the engine sees an ordinary scale axis — point hashes,
   shards and resumes all work unchanged.  Degenerate ramps (flagged by
   lint as S109) collapse to their starting scale rather than failing
   the parse, keeping every grid problem in the lint report. *)
let ramp_scales r =
  if r.ramp_steps >= 2 && r.ramp_to > r.ramp_from then
    List.init r.ramp_steps (fun i ->
        r.ramp_from
        +. ((r.ramp_to -. r.ramp_from) *. float_of_int i
            /. float_of_int (r.ramp_steps - 1)))
  else [ r.ramp_from ]

let ramp_field json =
  match Obs_json.member "critical_load" json with
  | Error _ -> Ok None
  | Ok (Obs_json.Obj _ as r) ->
    let req field =
      match Obs_json.member field r with
      | Error _ ->
        Result.Error
          (Printf.sprintf "\"critical_load\" needs a %S field" field)
      | Ok v ->
        (match Obs_json.to_float v with
         | Ok f -> Ok f
         | Error _ ->
           Result.Error
             (Printf.sprintf "\"critical_load\" %S must be a number" field))
    in
    let* ramp_from = req "from" in
    let* ramp_to = req "to" in
    let* ramp_steps = int_field ~default:8 "steps" r in
    Ok (Some { ramp_from; ramp_to; ramp_steps })
  | Ok _ ->
    Result.Error "\"critical_load\" must be {\"from\",\"to\",\"steps\"}"

let parse text =
  let shaped =
    let* json =
      match Obs_json.of_string text with
      | Ok j -> Ok j
      | Error e -> Result.Error (Printf.sprintf "not valid JSON: %s" e)
    in
    let* () =
      match json with
      | Obs_json.Obj _ -> Ok ()
      | _ -> Result.Error "spec must be a JSON object"
    in
    let* scenarios = str_list "scenarios" json in
    let* scenarios =
      match scenarios with
      | None -> Result.Error "missing required \"scenarios\" list"
      | Some ss -> Ok (List.map scenario_of_string ss)
    in
    let* metric_names = str_list "metrics" json in
    let* metrics =
      match metric_names with
      | None -> Ok [ Metric.Hn_spf ]
      | Some names ->
        List.fold_left
          (fun acc name ->
            let* acc = acc in
            match Metric.kind_of_name name with
            | Some k -> Ok (k :: acc)
            | None -> Result.Error (Printf.sprintf "unknown metric %S" name))
          (Ok []) names
        |> Result.map List.rev
    in
    let* scales = float_list "scales" json in
    let* critical_load = ramp_field json in
    let* () =
      match (scales, critical_load) with
      | Some _, Some _ ->
        Result.Error
          "\"scales\" and \"critical_load\" are mutually exclusive: the \
           ramp generates the scale axis"
      | _ -> Ok ()
    in
    let scales =
      match critical_load with
      | Some r -> ramp_scales r
      | None -> Option.value scales ~default:[ 1.0 ]
    in
    let* seeds = seeds_field json in
    let* periods = int_field ~default:60 "periods" json in
    let* warmup = int_field ~default:0 "warmup" json in
    Ok { scenarios; metrics; scales; seeds; periods; warmup; critical_load }
  in
  Result.map_error (fun msg -> error "S100" "bad sweep spec: %s" msg) shaped

(* ---------------------------------------------------------------- *)
(* Lint.  Every grid problem in one pass, stable codes, so the CLI can
   refuse a bad spec before spawning domains (and [routing_check] can
   surface the same findings). *)

let duplicates ~to_string values =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun v ->
      let key = to_string v in
      if Hashtbl.mem seen key then Some key
      else (
        Hashtbl.add seen key ();
        None))
    values

let axis_issues name ~to_string values =
  let empty =
    if values = [] then [ error "S102" "empty %s axis: the grid has no points" name ]
    else []
  in
  let dups =
    List.map
      (fun v ->
        warning "S103" "duplicate %s %s: the grid repeats identical points" name v)
      (duplicates ~to_string values)
  in
  empty @ dups

let lint_scenario sc =
  match sc with
  | Builtin _ -> []
  | File path ->
    if not (Sys.file_exists path) then
      [ error "S101" "unknown scenario %S: no such builtin or file" path ]
    else (
      match Script.load path with
      | Ok _ -> []
      | Error e -> [ error "S101" "scenario %S does not parse: %s" path e ])

let lint t =
  let scenario_axis =
    axis_issues "scenario" ~to_string:scenario_name t.scenarios
    @ List.concat_map lint_scenario t.scenarios
  in
  let metric_axis = axis_issues "metric" ~to_string:Metric.kind_name t.metrics in
  let scale_axis =
    axis_issues "scale" ~to_string:(Printf.sprintf "%g") t.scales
    @ List.concat_map
        (fun s ->
          if s <= 0. then [ error "S105" "scale %g is not positive" s ]
          else if s > 10. then
            [ warning "S105" "scale %g is outside the modelled range (0, 10]" s ]
          else [])
        t.scales
  in
  let seed_axis =
    axis_issues "seed" ~to_string:string_of_int t.seeds
    @ List.concat_map
        (fun s -> if s < 0 then [ error "S104" "negative seed %d" s ] else [])
        t.seeds
  in
  let ramp_axis =
    match t.critical_load with
    | None -> []
    | Some r ->
      (if r.ramp_steps < 3 then
         [ error "S109"
             "critical_load needs at least 3 steps to locate a knee (got %d)"
             r.ramp_steps ]
       else [])
      @ (if r.ramp_to <= r.ramp_from then
           [ error "S109"
               "critical_load ramp is not increasing: to (%g) <= from (%g)"
               r.ramp_to r.ramp_from ]
         else [])
  in
  let budget =
    (if t.periods <= 0 then [ error "S106" "periods must be positive (got %d)" t.periods ]
     else [])
    @ (if t.warmup < 0 then [ error "S106" "warmup must be non-negative (got %d)" t.warmup ]
       else if t.periods > 0 && t.warmup >= t.periods then
         [ error "S106" "warmup (%d) consumes every period (%d): no measured periods remain"
             t.warmup t.periods ]
       else [])
  in
  scenario_axis @ metric_axis @ scale_axis @ ramp_axis @ seed_axis @ budget

(* [--shard I/N]: this process runs grid points whose index ≡ I (mod N).
   Parsed here so the CLI and routing_check agree on the S107 shape. *)
let shard_of_string s =
  match String.index_opt s '/' with
  | None ->
    Result.Error
      (error "S107" "bad shard %S: expected I/N (e.g. 0/4)" s)
  | Some slash ->
    let i_text = String.sub s 0 slash in
    let n_text = String.sub s (slash + 1) (String.length s - slash - 1) in
    (match (int_of_string_opt i_text, int_of_string_opt n_text) with
    | None, _ | _, None ->
      Result.Error (error "S107" "bad shard %S: expected I/N (e.g. 0/4)" s)
    | Some _, Some n when n < 1 ->
      Result.Error (error "S107" "bad shard %S: N must be at least 1" s)
    | Some i, Some n when i < 0 || i >= n ->
      Result.Error
        (error "S107" "bad shard %S: I must be in [0, %d)" s n)
    | Some i, Some n -> Ok (i, n))

let lint_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> ([ error "S100" "cannot read sweep spec: %s" e ], None)
  | text ->
    (match parse text with
     | Result.Error issue -> ([ issue ], None)
     | Ok t -> (lint t, Some t))

let load path =
  let issues, t = lint_file path in
  match errors issues with
  | first :: _ -> Result.Error (Printf.sprintf "[%s] %s" first.code first.message)
  | [] ->
    (match t with
     | Some t -> Ok t
     | None -> Result.Error "unreadable sweep spec")

open! Import

(** S0xx — static check of [.scn] scenario scripts.

    Builds on {!Script.lint}: every parse or cross-reference failure
    that used to surface as a mid-run [Invalid_argument] becomes a
    located diagnostic, and a few semantic sanity checks run on the
    parsed event list:

    - [S001] (error) — syntax: malformed line, bad time/scale/metric,
      unknown directive
    - [S002] (error) — an event names a node no trunk introduced
    - [S003] (error) — [link-down]/[link-up] between non-adjacent PSNs
    - [S010] (warning) — events listed out of time order (they still
      replay sorted; the file is misleading)
    - [S011] (warning) — traffic scale outside (0, 10]
    - [S012] (warning) — event scheduled beyond 24 h of simulated time
    - [S013] (info) — a trunk taken down and never revived
    - [S014] (warning) — [link-down] on a trunk already down, or
      [link-up] on one never taken down *)

val check_text : ?file:string -> string -> Diagnostic.t list * Script.t
(** Check scenario text; the scenario is best-effort (usable when no
    [S00x] error was reported). *)

val check_file : string -> Diagnostic.t list * Script.t option
(** {!check_text} on a file's contents; an unreadable file yields a
    single [S000] error and no scenario. *)

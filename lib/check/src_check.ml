open! Import

(* --- Minimal s-expression reader, enough for dune files --- *)

type sexp = Atom of string | List of sexp list

let tokenize text =
  let tokens = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := `Atom (Buffer.contents buf) :: !tokens;
      Buffer.clear buf
    end
  in
  let n = String.length text in
  let i = ref 0 in
  while !i < n do
    (match text.[!i] with
    | '(' -> flush (); tokens := `Open :: !tokens
    | ')' -> flush (); tokens := `Close :: !tokens
    | ';' ->
      (* comment to end of line *)
      flush ();
      while !i < n && text.[!i] <> '\n' do incr i done
    | ' ' | '\t' | '\n' | '\r' -> flush ()
    | c -> Buffer.add_char buf c);
    incr i
  done;
  flush ();
  List.rev !tokens

let parse_sexps text =
  let rec parse_list acc = function
    | [] -> (List.rev acc, [])
    | `Close :: rest -> (List.rev acc, rest)
    | `Open :: rest ->
      let items, rest = parse_list [] rest in
      parse_list (List items :: acc) rest
    | `Atom a :: rest -> parse_list (Atom a :: acc) rest
  in
  fst (parse_list [] (tokenize text))

let field name = function
  | List (Atom head :: rest) when String.equal head name -> Some rest
  | _ -> None

(* --- The routing_spf dependency closure, from the dune files --- *)

let read_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> Some text
  | exception Sys_error _ -> None

let library_stanzas root =
  Sys.readdir root |> Array.to_list |> List.sort String.compare
  |> List.filter_map (fun dir ->
         let dune = Filename.concat (Filename.concat root dir) "dune" in
         if Sys.file_exists dune then
           Option.map (fun text -> (dir, parse_sexps text)) (read_file dune)
         else None)
  |> List.concat_map (fun (dir, sexps) ->
         List.filter_map
           (fun sexp ->
             match field "library" sexp with
             | None -> None
             | Some fields ->
               let name =
                 List.find_map
                   (fun f ->
                     match field "name" f with
                     | Some [ Atom n ] -> Some n
                     | _ -> None)
                   fields
               in
               let deps =
                 List.concat_map
                   (fun f ->
                     match field "libraries" f with
                     | Some atoms ->
                       List.filter_map
                         (function Atom a -> Some a | List _ -> None)
                         atoms
                     | None -> [])
                   fields
               in
               Option.map (fun name -> (name, dir, deps)) name)
           sexps)

let spf_reachable ~root =
  let stanzas = library_stanzas root in
  let rec closure seen = function
    | [] -> seen
    | name :: queue ->
      if List.mem_assoc name seen then closure seen queue
      else begin
        match
          List.find_opt (fun (n, _, _) -> String.equal n name) stanzas
        with
        | None -> closure seen queue (* external library *)
        | Some (_, dir, deps) -> closure ((name, dir) :: seen) (deps @ queue)
      end
  in
  closure [] [ "routing_spf" ] |> List.map snd |> List.sort_uniq String.compare

(* --- The line scans --- *)

(* Blank out comments and string/char literals, preserving the line
   structure so reported line numbers and the column-0 [let] test still
   hold.  Without this the lint would flag its own documentation and
   error messages — the banned names appear there as text, not code.

   The scan follows the reference lexer's comment rules: comments nest,
   and a string literal inside a comment is lexed as a string — so
   `(* "*)" *)` stays one comment — while char literals like '"' and
   '\'' never open a string, inside a comment or out.  {id|…|id}
   quoted-string literals are matched by delimiter. *)
let code_lines text =
  let n = String.length text in
  let out = Buffer.create n in
  let i = ref 0 in
  (* Consume one char as blanked-out: newlines survive, the rest
     becomes a space. *)
  let blank () =
    Buffer.add_char out (if text.[!i] = '\n' then '\n' else ' ');
    incr i
  in
  (* Double-quoted string, [!i] at the opening quote. *)
  let scan_string () =
    blank ();
    let closed = ref false in
    while (not !closed) && !i < n do
      match text.[!i] with
      | '\\' when !i + 1 < n -> blank (); blank ()
      | '"' -> blank (); closed := true
      | _ -> blank ()
    done
  in
  (* {id|…|id} quoted string, [!i] at '{'.  Returns false (consuming
     nothing) when the brace does not actually open one. *)
  let scan_quoted () =
    let j = ref (!i + 1) in
    while
      !j < n && (match text.[!j] with 'a' .. 'z' | '_' -> true | _ -> false)
    do
      incr j
    done;
    if !j >= n || text.[!j] <> '|' then false
    else begin
      let close = "|" ^ String.sub text (!i + 1) (!j - !i - 1) ^ "}" in
      let clen = String.length close in
      while !i <= !j do blank () done;
      let closed = ref false in
      while (not !closed) && !i < n do
        if !i + clen <= n && String.sub text !i clen = close then begin
          for _ = 1 to clen do blank () done;
          closed := true
        end
        else blank ()
      done;
      true
    end
  in
  (* Is [!i] (at a single quote) the start of a char literal?  Covers
     'c', '\n', '\\', '\"', '\123', '\xFF'; a lone prime (type
     variables, primed identifiers) has no closing quote nearby and is
     left as code. *)
  let char_literal_end () =
    if !i + 2 < n && text.[!i + 1] = '\\' then
      let rec find j limit =
        if j >= n || j > limit then None
        else if text.[j] = '\'' then Some (j + 1)
        else find (j + 1) limit
      in
      find (!i + 3) (!i + 7)
    else if !i + 2 < n && text.[!i + 1] <> '\'' && text.[!i + 2] = '\'' then
      Some (!i + 3)
    else None
  in
  let scan_char_literal () =
    match char_literal_end () with
    | Some stop ->
      while !i < stop do blank () done;
      true
    | None -> false
  in
  (* Comment body, [!i] at the '(' of "(*".  Recurses on nesting. *)
  let rec scan_comment () =
    blank ();
    blank ();
    let closed = ref false in
    while (not !closed) && !i < n do
      let c = text.[!i] in
      let next = if !i + 1 < n then text.[!i + 1] else '\000' in
      if c = '(' && next = '*' then scan_comment ()
      else if c = '*' && next = ')' then begin
        blank ();
        blank ();
        closed := true
      end
      else if c = '"' then scan_string ()
      else if c = '{' then begin if not (scan_quoted ()) then blank () end
      else if c = '\'' then begin
        if not (scan_char_literal ()) then blank ()
      end
      else blank ()
    done
  in
  while !i < n do
    let c = text.[!i] in
    let next = if !i + 1 < n then text.[!i + 1] else '\000' in
    if c = '(' && next = '*' then scan_comment ()
    else if c = '"' then scan_string ()
    else if c = '{' then begin
      if not (scan_quoted ()) then begin
        Buffer.add_char out c;
        incr i
      end
    end
    else if c = '\'' then begin
      if not (scan_char_literal ()) then begin
        Buffer.add_char out c;
        incr i
      end
    end
    else begin
      Buffer.add_char out c;
      incr i
    end
  done;
  String.split_on_char '\n' (Buffer.contents out)

let contains line needle =
  let n = String.length needle and len = String.length line in
  let rec scan i = i + n <= len && (String.sub line i n = needle || scan (i + 1)) in
  scan 0

(* A toplevel binding: a line starting at column 0 with "let ".  Local
   [let … in] bindings are indented by every style in this tree, so the
   column-0 test cleanly separates module-level state from function
   locals. *)
let is_toplevel_let line =
  String.length line > 4 && String.sub line 0 4 = "let "

let mutable_constructs =
  [ "= ref "; "Hashtbl.create"; "Queue.create"; "Buffer.create";
    "Atomic.make" ]

let span_clock_file path =
  Filename.basename (Filename.dirname path) = "obs"
  && Filename.basename path = "span.ml"

let scan_file ~in_spf_closure path =
  match read_file path with
  | None -> []
  | Some text ->
    let diags = ref [] in
    let add ~line ~code message =
      diags := Diagnostic.error ~file:path ~line ~code message :: !diags
    in
    List.iteri
      (fun index line ->
        let lineno = index + 1 in
        if contains line "Random.self_init" then
          add ~line:lineno ~code:"L001"
            "Random.self_init: seeds must be explicit (Routing_stats.Rng) \
             or parallel runs stop being reproducible";
        if
          (contains line "Unix.gettimeofday" || contains line "Sys.time")
          && not (span_clock_file path)
        then
          add ~line:lineno ~code:"L002"
            "wall-clock read outside lib/obs/span.ml: route timing through \
             the pluggable Span clock so runs stay deterministic";
        if in_spf_closure && is_toplevel_let line then
          List.iter
            (fun needle ->
              if contains line needle then
                add ~line:lineno ~code:"L003"
                  (Printf.sprintf
                     "top-level mutable state (%s) in a module reachable \
                      from Spf_engine — domains may race on it"
                     (String.trim needle)))
            mutable_constructs)
      (code_lines text);
    List.rev !diags

let rec ml_files dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
    Array.to_list entries |> List.sort String.compare
    |> List.concat_map (fun entry ->
           let path = Filename.concat dir entry in
           if entry = "_build" || String.length entry > 0 && entry.[0] = '.'
           then []
           else if Sys.is_directory path then ml_files path
           else if
             Filename.check_suffix entry ".ml"
             || Filename.check_suffix entry ".mli"
           then [ path ]
           else [])

let check_tree ~root =
  let closure_dirs = spf_reachable ~root in
  let in_closure path =
    (* path = root/<dir>/…; test the first component under root. *)
    let rec relative p =
      let parent = Filename.dirname p in
      if String.equal parent root then Some (Filename.basename p)
      else if String.equal parent p then None
      else relative parent
    in
    match relative path with
    | Some dir -> List.mem dir closure_dirs
    | None -> false
  in
  List.concat_map
    (fun path -> scan_file ~in_spf_closure:(in_closure path) path)
    (ml_files root)

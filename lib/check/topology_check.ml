open! Import

(* Abbreviate "A B C D E ..." lists so a big topology's audit stays one
   line per finding. *)
let name_list names =
  let shown, rest =
    if List.length names <= 8 then (names, 0)
    else (List.filteri (fun i _ -> i < 8) names, List.length names - 8)
  in
  String.concat " " shown
  ^ if rest > 0 then Printf.sprintf " (+%d more)" rest else ""

let check ?file g tm =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  if Graph.link_count g = 0 then
    add (Diagnostic.error ?file ~code:"T001" "empty topology: no trunks")
  else begin
    if not (Graph.is_connected g) then
      add
        (Diagnostic.error ?file ~code:"T002"
           "topology is disconnected: some PSN pairs have no path at all");
    (* Single points of failure (§5.2's alternate-path richness). *)
    let bridges = Graph_analysis.bridges g in
    if bridges <> [] then begin
      let captive = Graph_analysis.captive_traffic_fraction g tm in
      add
        (Diagnostic.info ?file ~code:"T010"
           (Printf.sprintf
              "%d of %d trunks are bridges (failure partitions the net): \
               %s; %.1f%% of offered traffic is captive to one"
              (List.length bridges)
              (Graph.link_count g / 2)
              (name_list
                 (List.map
                    (fun (l : Link.t) ->
                      Printf.sprintf "%s-%s"
                        (Graph.node_name g l.Link.src)
                        (Graph.node_name g l.Link.dst))
                    bridges))
              (100. *. captive)))
    end;
    let articulation = Graph_analysis.articulation_points g in
    if articulation <> [] then
      add
        (Diagnostic.info ?file ~code:"T011"
           (Printf.sprintf "%d articulation PSN(s) whose failure partitions \
                            the net: %s"
              (List.length articulation)
              (name_list (List.map (Graph.node_name g) articulation))));
    let stubs =
      List.filter (fun n -> Graph.degree g n = 1) (Graph.nodes g)
    in
    if stubs <> [] then
      add
        (Diagnostic.info ?file ~code:"T012"
           (Printf.sprintf "%d stub PSN(s) on a single trunk: %s"
              (List.length stubs)
              (name_list (List.map (Graph.node_name g) stubs))));
    (* Demand a PSN physically cannot source or sink. *)
    let n = Graph.node_count g in
    let inbound = Array.make n 0. in
    Traffic_matrix.iter tm (fun ~src:_ ~dst bps ->
        inbound.(Node.to_int dst) <- inbound.(Node.to_int dst) +. bps);
    Graph.iter_nodes g (fun node ->
        let capacity =
          List.fold_left
            (fun acc l -> acc +. Link.capacity_bps l)
            0. (Graph.out_links g node)
        in
        let report direction demand =
          if capacity > 0. && demand > capacity then
            add
              (Diagnostic.info ?file ~code:"T013"
                 (Printf.sprintf
                    "PSN %s %s %.0f bit/s but its trunks total %.0f bit/s \
                     — overload no routing metric can shed"
                    (Graph.node_name g node) direction demand capacity))
        in
        report "sources" (Traffic_matrix.offered_from tm node);
        report "sinks" inbound.(Node.to_int node))
  end;
  List.rev !diags

(* Shared plumbing for the artifact-driven passes: finding build
   artifacts and reading typed ASTs out of .cmt files via compiler-libs.
   Nothing here emits diagnostics — the passes (Alloc_check,
   Domains_check) own their codes. *)

let rec find_files ~ext acc dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
    (* Deterministic traversal order regardless of filesystem. *)
    Array.sort compare entries;
    Array.fold_left
      (fun acc e ->
        let path = Filename.concat dir e in
        if (try Sys.is_directory path with Sys_error _ -> false) then
          find_files ~ext acc path
        else if Filename.check_suffix e ext then path :: acc
        else acc)
      acc entries

let find_all ~ext roots =
  List.rev (List.fold_left (find_files ~ext) [] roots)

type cmt = {
  path : string;
  modname : string;  (* the compilation unit, e.g. "Routing_spf__Dijkstra" *)
  structure : Typedtree.structure;
}

let read_cmt path =
  match Cmt_format.read_cmt path with
  | exception _ ->
    Error "unreadable .cmt (truncated, or built by a different compiler)"
  | cmt -> (
    match cmt.Cmt_format.cmt_annots with
    | Cmt_format.Implementation structure ->
      Ok { path; modname = cmt.Cmt_format.cmt_modname; structure }
    | _ -> Error "no implementation annotations (interface-only .cmt)")

let has_attr name attrs =
  List.exists
    (fun (a : Parsetree.attribute) ->
      String.equal a.Parsetree.attr_name.Location.txt name)
    attrs

type annotated = { name : string; file : string; line : int }

(* Every [@@hot_path]-annotated value binding in the structure, at any
   nesting depth, in source order.  Only simple [let f ... = ...]
   bindings are recognized — a pattern binding cannot name a function in
   the native dump anyway. *)
let hot_path_bindings structure =
  let out = ref [] in
  let value_binding sub vb =
    (match vb.Typedtree.vb_pat.Typedtree.pat_desc with
    | Typedtree.Tpat_var (id, _)
      when has_attr "hot_path" vb.Typedtree.vb_attributes ->
      let pos = vb.Typedtree.vb_loc.Location.loc_start in
      out :=
        { name = Ident.name id;
          file = pos.Lexing.pos_fname;
          line = pos.Lexing.pos_lnum }
        :: !out
    | _ -> ());
    Tast_iterator.default_iterator.value_binding sub vb
  in
  let it = { Tast_iterator.default_iterator with value_binding } in
  it.structure it structure;
  List.rev !out

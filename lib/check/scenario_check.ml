open! Import

let max_event_time_s = 86_400.

(* Unordered trunk key for matching link-down/link-up pairs. *)
let pair_key a b = if String.compare a b <= 0 then (a, b) else (b, a)

let semantic_checks ?file (t : Script.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let in_file_order =
    List.sort
      (fun (a : Script.event) (b : Script.event) -> compare a.line b.line)
      t.Script.events
  in
  (* S010: listed order vs replay order. *)
  let rec order_scan = function
    | (a : Script.event) :: ((b : Script.event) :: _ as rest) ->
      if b.at_s < a.at_s then
        add
          (Diagnostic.warning ?file ~line:b.Script.line ~code:"S010"
             (Printf.sprintf
                "event at t=%g listed after one at t=%g — events replay in \
                 time order, not file order"
                b.at_s a.at_s));
      order_scan rest
    | _ -> ()
  in
  order_scan in_file_order;
  (* Per-event range checks plus the down/up bookkeeping (in time order,
     which is how the simulator fires them). *)
  let down = Hashtbl.create 8 in
  List.iter
    (fun (e : Script.event) ->
      let line = e.Script.line in
      if e.at_s > max_event_time_s then
        add
          (Diagnostic.warning ?file ~line ~code:"S012"
             (Printf.sprintf
                "event at t=%g is beyond 24 h of simulated time — likely a \
                 typo" e.at_s));
      match e.action with
      | Script.Scale_traffic f ->
        if f = 0. || f > 10. then
          add
            (Diagnostic.warning ?file ~line ~code:"S011"
               (Printf.sprintf
                  "traffic scale %g is outside the plausible (0, 10] range" f))
      | Script.Link_down (a, b) ->
        let key = pair_key a b in
        if Hashtbl.mem down key then
          add
            (Diagnostic.warning ?file ~line ~code:"S014"
               (Printf.sprintf "trunk %s-%s is already down here" a b))
        else Hashtbl.replace down key line
      | Script.Link_up (a, b) ->
        let key = pair_key a b in
        if not (Hashtbl.mem down key) then
          add
            (Diagnostic.warning ?file ~line ~code:"S014"
               (Printf.sprintf
                  "link-up for trunk %s-%s which was never taken down" a b))
        else Hashtbl.remove down key
      | Script.Set_metric _ | Script.Adaptive_sources _ -> ())
    t.Script.events;
  Hashtbl.iter
    (fun (a, b) line ->
      add
        (Diagnostic.info ?file ~line ~code:"S013"
           (Printf.sprintf
              "trunk %s-%s goes down and is never revived (permanent outage)"
              a b)))
    down;
  List.rev !diags

let check_text ?file text =
  let errors, t = Script.lint text in
  let parse_diags =
    List.map
      (fun (e : Script.error) ->
        let code =
          match e.Script.kind with
          | Script.Syntax -> "S001"
          | Script.Unknown_node _ -> "S002"
          | Script.No_trunk _ -> "S003"
        in
        Diagnostic.error ?file ~line:e.Script.line ~code e.Script.message)
      errors
  in
  (parse_diags @ semantic_checks ?file t, t)

let check_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error message ->
    ([ Diagnostic.error ~file:path ~code:"S000" message ], None)
  | text ->
    let diags, t = check_text ~file:path text in
    (diags, Some t)

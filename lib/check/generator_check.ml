open! Import

(* See the .mli for the T02x catalogue.  Parsing is total: every shape
   problem becomes a T020/T021 diagnostic rather than an exception, so the
   CLI can report all of a bad spec's problems and exit cleanly. *)

let ( let* ) = Result.bind

let num_field field json =
  match Obs_json.member field json with
  | Error _ -> Result.Error (Printf.sprintf "missing %S field" field)
  | Ok v ->
    (match Obs_json.to_float v with
    | Ok f -> Ok f
    | Error _ -> Result.Error (Printf.sprintf "%S must be a number" field))

let int_field field json =
  match Obs_json.member field json with
  | Error _ -> Result.Error (Printf.sprintf "missing %S field" field)
  | Ok v ->
    (match Obs_json.to_int v with
    | Ok n -> Ok n
    | Error _ -> Result.Error (Printf.sprintf "%S must be an integer" field))

let parse text =
  let* json =
    match Obs_json.of_string text with
    | Ok j -> Ok j
    | Error e -> Result.Error (Printf.sprintf "not valid JSON: %s" e)
  in
  let* () =
    match json with
    | Obs_json.Obj _ -> Ok ()
    | _ -> Result.Error "spec must be a JSON object"
  in
  let* family =
    match Obs_json.member "family" json with
    | Error _ -> Result.Error "missing \"family\" field"
    | Ok v ->
      (match Obs_json.to_str v with
      | Ok s -> Ok s
      | Error _ -> Result.Error "\"family\" must be a string")
  in
  match family with
  | "waxman" ->
    let* nodes = int_field "nodes" json in
    let* alpha = num_field "alpha" json in
    let* beta = num_field "beta" json in
    Ok (Ok (Generators.Waxman { nodes; alpha; beta }))
  | "hierarchical" ->
    let* cores = int_field "cores" json in
    let* pops_per_core = int_field "pops_per_core" json in
    let* access_per_pop = int_field "access_per_pop" json in
    Ok (Ok (Generators.Hierarchical { cores; pops_per_core; access_per_pop }))
  | other -> Ok (Result.Error other)

(* Mean Waxman degree, integrating the connection probability over the
   plane: alpha * 2 pi (beta L)^2 * n.  Below ~2 the generated edges do
   not even form a connected backbone and the output is dominated by the
   stitching pass. *)
let waxman_expected_degree ~nodes ~alpha ~beta =
  let bl = beta *. sqrt 2. in
  alpha *. 2. *. Float.pi *. bl *. bl *. float_of_int (nodes - 1)

let lint ?file spec =
  let error code fmt =
    Printf.ksprintf (fun m -> Diagnostic.error ?file ~code m) fmt
  in
  let warning code fmt =
    Printf.ksprintf (fun m -> Diagnostic.warning ?file ~code m) fmt
  in
  match spec with
  | Generators.Waxman { nodes; alpha; beta } ->
    let sizes =
      if nodes < 2 then
        [ error "T022" "waxman needs at least 2 nodes (got %d)" nodes ]
      else []
    in
    let alpha_d =
      if not (alpha > 0. && alpha <= 1.) then
        [ error "T023" "waxman alpha %g outside (0, 1]" alpha ]
      else []
    in
    let beta_d =
      if not (beta > 0. && beta <= 1.) then
        [ error "T024" "waxman beta %g outside (0, 1]" beta ]
      else []
    in
    let sparse =
      if sizes = [] && alpha_d = [] && beta_d = [] then begin
        let deg = waxman_expected_degree ~nodes ~alpha ~beta in
        if deg < 2. then
          [ warning "T025"
              "waxman expected degree %.2f < 2: the result is mostly \
               connectivity stitching, not a Waxman graph (raise alpha or \
               beta)"
              deg ]
        else []
      end
      else []
    in
    sizes @ alpha_d @ beta_d @ sparse
  | Generators.Hierarchical { cores; pops_per_core; access_per_pop } ->
    (if cores < 3 then
       [ error "T022" "hierarchical needs at least 3 cores (got %d)" cores ]
     else [])
    @ (if pops_per_core < 1 then
         [ error "T022" "hierarchical needs at least 1 PoP per core (got %d)"
             pops_per_core ]
       else [])
    @
    if access_per_pop < 0 then
      [ error "T022" "hierarchical access_per_pop is negative (%d)"
          access_per_pop ]
    else []

let check_file path =
  let error code fmt =
    Printf.ksprintf (fun m -> Diagnostic.error ~file:path ~code m) fmt
  in
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e ->
    ([ error "T020" "cannot read generator spec: %s" e ], None)
  | text ->
    (match parse text with
    | Result.Error msg -> ([ error "T020" "bad generator spec: %s" msg ], None)
    | Ok (Result.Error family) ->
      ( [ error "T021"
            "unknown generator family %S (expected \"waxman\" or \
             \"hierarchical\")"
            family ],
        None )
    | Ok (Ok spec) ->
      let diags = lint ~file:path spec in
      let ok =
        not
          (List.exists
             (fun d -> d.Diagnostic.severity = Diagnostic.Error)
             diags)
      in
      (diags, if ok then Some spec else None))

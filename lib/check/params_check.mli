open! Import

(** P0xx — lint for HNM parameter tables ({!Hnm_params.t}).

    §4.4 invites networks to tailor the table; this pass keeps tailored
    values inside every bound the paper states (DESIGN.md §2), so an
    override cannot silently break the metric's hop-normalized
    guarantees.  Per entry:

    - [P001] (error) — [max_cost <> 3 * base_min]: a saturated line must
      look like exactly "two additional hops" (§4.2)
    - [P002] (error) — slope/offset inconsistent with the 50 %-knee
      linear transform ([raw(0.5) = base_min], [raw(1.0) = max_cost])
    - [P003] (error) — [max_up <> base_min/2 + 1]: cost may move up only
      a little more than a half-hop per period (§5.4)
    - [P004] (error) — [max_down <> max_up - 1]: the asymmetric limit
      behind the march-up heuristic
    - [P005] (error) — [min_change <> base_min/2 - 1]: the sub-half-hop
      significance threshold (§4.3)
    - [P006] (error) — cost not monotone in utilization ([slope <= 0])
    - [P007] (error) — bounds outside the reportable range
      ([base_min < 1], [base_min > max_cost], or
      [max_cost > Units.max_cost])

    and across a whole table:

    - [P008] (warning) — a faster line type with a higher [base_min]
      than a slower one (inverts "faster lines look cheaper")
    - [P009] (error) — duplicate entries for one line type *)

val check_params : ?file:string -> Hnm_params.t -> Diagnostic.t list
(** Lint one entry. *)

val check_table : ?file:string -> Hnm_params.t list -> Diagnostic.t list
(** Lint every entry plus the cross-entry invariants. *)

(** {2 Parameter files}

    [arpanet_check] lints user tables from a JSON file (decoded with
    {!Obs_json}, no new dependency): either
    [{"averaging": bool, "movement_limits": bool, "tables": [entry…]}]
    or a bare [[entry…]], where an entry object has the fields of
    {!Hnm_params.t} with [line_type] by name
    ([{"line_type":"56T","base_min":30,…}]).  Entries override the
    built-in defaults per line type; the two booleans mirror
    {!Hnm.config}'s ablation switches and feed {!Stability_check}. *)

type file = {
  entries : Hnm_params.t list;
  averaging : bool;  (** the 0.5/0.5 filter stays enabled (default true) *)
  movement_limits : bool;
      (** per-period half-hop movement clamps stay enabled (default
          true) *)
}

val of_json : Obs_json.t -> (file, string) result

val load : string -> (file, string) result
(** Read and decode a params file; the error string is human-ready. *)

open! Import

(** R0xx — static routing-loop stability analysis.

    Runs the §5 control-theory machinery ({!Stability.analyze_hnm})
    over the topology's response map {e without simulating}: find the
    continuous equilibrium of cost → shed traffic → cost and its loop
    gain.  A configuration whose effective gain reaches 1 reintroduces
    the §3.3 oscillation the 1987 revision was built to kill — the
    checker flags it before a run does.

    Each link is analyzed {e at the offered load the traffic matrix
    actually gives it} (its min-hop utilization, the Figs 9–12
    normalizer) — the configuration the first routing period will face:

    - [R001] (warning) — effective gain ≥ 1 with a taming mechanism
      (the 0.5/0.5 filter or the movement limits) switched off: the
      parameter set reintroduces unbounded §3.3 oscillation
    - [R002] (info) — worst configured-load gain, for calibration
    - [R003] (info) — headroom: the smallest load in a hypothetical
      sweep at which a line type's loop would go unstable, i.e. how
      much traffic growth the topology + table can absorb
    - [R004] (info) — an unstable fixed point under the {e full} HNM
      pipeline: the half-hop movement limits bound the cycle to the
      §5.4 march-up ripple, so this is a capacity observation, not a
      misconfiguration *)

val default_loads : float list
(** [0.5; 1.0; 1.5; 2.0; 3.0] — the R003 sweep, offered load as a
    multiple of a link's capacity, spanning Fig 9–12's range. *)

val check :
  ?file:string ->
  ?averaging:bool ->
  ?movement_limits:bool ->
  ?entries:Hnm_params.t list ->
  ?loads:float list ->
  Graph.t ->
  Traffic_matrix.t ->
  Diagnostic.t list
(** Analyze every traffic-carrying link at its configured load
    (R001/R004, R002) and sweep one representative link per line type
    over [loads] (R003).  [entries] overrides the built-in table per
    line type (others keep their defaults); [averaging] and
    [movement_limits] (both default true) mirror {!Hnm.config}'s
    ablation switches.  Empty graphs and all-zero traffic are skipped —
    the topology pass already reports those. *)

(** Build-artifact plumbing shared by the whole-program passes
    ({!Alloc_check}, {!Domains_check}): artifact discovery and typed-AST
    access via compiler-libs. *)

val find_all : ext:string -> string list -> string list
(** Every file under the root directories (recursively) whose name ends
    in [ext], in a deterministic order.  Unreadable directories are
    silently skipped. *)

type cmt = {
  path : string;
  modname : string;
      (** the compilation unit name, e.g. ["Routing_spf__Dijkstra"] —
          matches the [caml<unit>.] prefix of native symbols *)
  structure : Typedtree.structure;
}

val read_cmt : string -> (cmt, string) result
(** Load a [.cmt] produced by this compiler.  [Error] carries a short
    reason suitable for a diagnostic message. *)

type annotated = { name : string; file : string; line : int }

val hot_path_bindings : Typedtree.structure -> annotated list
(** All [let f … = … [@@hot_path]] bindings in the structure, at any
    depth, in source order. *)

open! Import

let of_issue ~file (i : Sweep_spec.issue) =
  let make =
    match i.severity with
    | Sweep_spec.Error -> Diagnostic.error
    | Sweep_spec.Warning -> Diagnostic.warning
  in
  make ~file ~code:i.code i.message

let check_file path =
  let issues, spec = Sweep_spec.lint_file path in
  (List.map (of_issue ~file:path) issues, spec)

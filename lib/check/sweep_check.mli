open! Import

(** S1xx — static check of sweep-spec JSON files.

    A thin adapter over {!Sweep_spec.lint_file}: each spec issue becomes
    a located diagnostic with its stable code preserved, so
    [arpanet_check] and [arpanet_sweep] report identical findings.

    - [S100] (error) — unreadable file, invalid JSON, or bad shape
    - [S101] (error) — unknown scenario: no such builtin or file, or the
      file does not parse
    - [S102] (error) — an empty grid axis (the sweep has no points)
    - [S103] (warning) — duplicate axis value (identical points repeat)
    - [S104] (error) — bad seed range (negative seed, or a range whose
      count is not positive yields an empty axis)
    - [S105] — load scale out of range: error when not positive, warning
      above 10
    - [S106] (error) — non-positive periods, negative warmup, or warmup
      consuming every period

    Two further codes belong to the sweep fabric's CLI surface rather
    than spec files, so they never appear in {!check_file} output:
    [S107] (error) — a malformed [--shard I/N] argument
    ({!Sweep_spec.shard_of_string}); [S108] — a [--merge]/[--resume]
    report problem (error when a merge input is unreadable, undecodable,
    incomplete or conflicting; warning when a [--resume] target cannot
    be read back and the run falls back to simulating every point). *)

val check_file : string -> Diagnostic.t list * Sweep_spec.t option
(** Lint one spec file; the spec is present iff it parsed (it may still
    carry error diagnostics — check before running). *)

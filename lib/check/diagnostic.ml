open! Import

type severity = Info | Warning | Error

type location = { file : string; line : int option }

type t = {
  code : string;
  severity : severity;
  location : location option;
  message : string;
}

let make severity ?file ?line ~code message =
  let location =
    match (file, line) with
    | None, None -> None
    | Some file, line -> Some { file; line }
    | None, Some line -> Some { file = "<input>"; line = Some line }
  in
  { code; severity; location; message }

let info ?file ?line ~code message = make Info ?file ?line ~code message

let warning ?file ?line ~code message = make Warning ?file ?line ~code message

let error ?file ?line ~code message = make Error ?file ?line ~code message

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

let compare_severity a b = compare (severity_rank a) (severity_rank b)

let max_severity diags =
  List.fold_left
    (fun acc d -> if compare_severity d.severity acc > 0 then d.severity else acc)
    Info diags

let exit_code diags = severity_rank (max_severity diags)

let count severity diags =
  List.length (List.filter (fun d -> d.severity = severity) diags)

let sort diags =
  let key d =
    match d.location with
    | None -> ("", max_int, d.code)
    | Some { file; line } -> (file, Option.value line ~default:0, d.code)
  in
  List.stable_sort (fun a b -> compare (key a) (key b)) diags

let pp ppf d =
  (match d.location with
  | Some { file; line = Some line } -> Format.fprintf ppf "%s:%d: " file line
  | Some { file; line = None } -> Format.fprintf ppf "%s: " file
  | None -> ());
  Format.fprintf ppf "%s[%s]: %s" (severity_name d.severity) d.code d.message

let pp_report ppf diags =
  List.iter (fun d -> Format.fprintf ppf "%a@." pp d) (sort diags);
  Format.fprintf ppf "%d error(s), %d warning(s), %d info@."
    (count Error diags) (count Warning diags) (count Info diags)

let to_json d =
  let fields = [ ("code", Obs_json.String d.code);
                 ("severity", Obs_json.String (severity_name d.severity)) ] in
  let fields =
    match d.location with
    | None -> fields
    | Some { file; line } ->
      fields
      @ (("file", Obs_json.String file)
         ::
         (match line with
         | None -> []
         | Some line -> [ ("line", Obs_json.Int line) ]))
  in
  Obs_json.Obj (fields @ [ ("message", Obs_json.String d.message) ])

let report_to_json diags =
  Obs_json.Obj
    [ ("diagnostics", Obs_json.List (List.map to_json (sort diags)));
      ("errors", Obs_json.Int (count Error diags));
      ("warnings", Obs_json.Int (count Warning diags));
      ("infos", Obs_json.Int (count Info diags)) ]

open! Import

type severity = Info | Warning | Error

type location = { file : string; line : int option }

type t = {
  code : string;
  severity : severity;
  location : location option;
  message : string;
}

let make severity ?file ?line ~code message =
  let location =
    match (file, line) with
    | None, None -> None
    | Some file, line -> Some { file; line }
    | None, Some line -> Some { file = "<input>"; line = Some line }
  in
  { code; severity; location; message }

let info ?file ?line ~code message = make Info ?file ?line ~code message

let warning ?file ?line ~code message = make Warning ?file ?line ~code message

let error ?file ?line ~code message = make Error ?file ?line ~code message

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

let compare_severity a b = compare (severity_rank a) (severity_rank b)

let max_severity diags =
  List.fold_left
    (fun acc d -> if compare_severity d.severity acc > 0 then d.severity else acc)
    Info diags

let exit_code diags = severity_rank (max_severity diags)

let count severity diags =
  List.length (List.filter (fun d -> d.severity = severity) diags)

(* Total order: every field participates, so equal keys mean equal
   diagnostics and the sorted report is byte-identical no matter what
   order the passes ran in (locationless diagnostics sort first under the
   empty file name). *)
let sort_key d =
  match d.location with
  | None -> ("", max_int, d.code, severity_rank d.severity, d.message)
  | Some { file; line } ->
    ( file,
      Option.value line ~default:0,
      d.code,
      severity_rank d.severity,
      d.message )

let sort diags =
  List.stable_sort (fun a b -> compare (sort_key a) (sort_key b)) diags

(* Two passes reporting the same code at the same location collapse to
   one diagnostic: the highest severity wins, and among messages at that
   severity the lexicographically least.  Merging after sorting keeps the
   result a pure function of the diagnostic *set*. *)
let merge diags =
  let same_site a b = a.code = b.code && a.location = b.location in
  let rec dedup = function
    | [] -> []
    | d :: rest ->
      let dups, rest = List.partition (same_site d) rest in
      let group = d :: dups in
      let sev = max_severity group in
      let best =
        group
        |> List.filter (fun x -> x.severity = sev)
        |> List.map (fun x -> x.message)
        |> List.sort compare |> List.hd
      in
      { d with severity = sev; message = best } :: dedup rest
  in
  sort (dedup diags)

let pp ppf d =
  (match d.location with
  | Some { file; line = Some line } -> Format.fprintf ppf "%s:%d: " file line
  | Some { file; line = None } -> Format.fprintf ppf "%s: " file
  | None -> ());
  Format.fprintf ppf "%s[%s]: %s" (severity_name d.severity) d.code d.message

let pp_report ppf diags =
  List.iter (fun d -> Format.fprintf ppf "%a@." pp d) (sort diags);
  Format.fprintf ppf "%d error(s), %d warning(s), %d info@."
    (count Error diags) (count Warning diags) (count Info diags)

let to_json d =
  let fields = [ ("code", Obs_json.String d.code);
                 ("severity", Obs_json.String (severity_name d.severity)) ] in
  let fields =
    match d.location with
    | None -> fields
    | Some { file; line } ->
      fields
      @ (("file", Obs_json.String file)
         ::
         (match line with
         | None -> []
         | Some line -> [ ("line", Obs_json.Int line) ]))
  in
  Obs_json.Obj (fields @ [ ("message", Obs_json.String d.message) ])

(* "T002" -> "T0xx", "S101" -> "S1xx": the letter prefix plus the first
   digit name a family; the catalogue in DESIGN.md §8 is organized the
   same way. *)
let family code =
  let n = String.length code in
  let i = ref 0 in
  while !i < n && not (code.[!i] >= '0' && code.[!i] <= '9') do incr i done;
  if !i < n then String.sub code 0 (!i + 1) ^ "xx" else code

let schema_version = 2

let summary_to_json diags =
  let families =
    List.sort_uniq compare (List.map (fun d -> family d.code) diags)
  in
  Obs_json.Obj
    [ ("errors", Obs_json.Int (count Error diags));
      ("warnings", Obs_json.Int (count Warning diags));
      ("infos", Obs_json.Int (count Info diags));
      ( "by_family",
        Obs_json.Obj
          (List.map
             (fun fam ->
               let n =
                 List.length
                   (List.filter (fun d -> family d.code = fam) diags)
               in
               (fam, Obs_json.Int n))
             families) ) ]

let report_to_json diags =
  Obs_json.Obj
    [ ("schema_version", Obs_json.Int schema_version);
      ("diagnostics", Obs_json.List (List.map to_json (sort diags)));
      ("errors", Obs_json.Int (count Error diags));
      ("warnings", Obs_json.Int (count Warning diags));
      ("infos", Obs_json.Int (count Info diags));
      ("summary", summary_to_json diags) ]

open! Import

(** T0xx — structural audit of a topology and its offered traffic.

    Errors are configurations no simulation can route around; the info
    diagnostics surface the §5.2 "rich with alternate paths" property
    (or its absence) before a run, via {!Graph_analysis}:

    - [T001] (error) — empty topology: no trunks at all
    - [T002] (error) — disconnected: some PSN pair has no path
    - [T010] (info) — bridge trunks, with the captive traffic fraction
      (flows crossing a bridge can never be shed at any reported cost)
    - [T011] (info) — articulation PSNs whose failure partitions the net
    - [T012] (info) — stub PSNs attached by a single trunk
    - [T013] (info) — a PSN whose offered demand exceeds the combined
      capacity of its incident trunks: an overload no metric can route
      around (a property of the offered load, not a misconfiguration —
      the real MILNET stubs trip this at peak) *)

val check : ?file:string -> Graph.t -> Traffic_matrix.t -> Diagnostic.t list
(** Audit a topology and its traffic; [file] labels the diagnostics. *)

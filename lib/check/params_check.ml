open! Import

(* Tables hold integer routing units stored as exact floats; half a unit
   of slack keeps the lint robust to a hand-written "119.99". *)
let tolerance = 0.5

let check_params ?file (p : Hnm_params.t) =
  let lt = Line_type.name p.Hnm_params.line_type in
  let base = p.Hnm_params.base_min in
  let diags = ref [] in
  let err code fmt =
    Printf.ksprintf
      (fun m -> diags := Diagnostic.error ?file ~code (lt ^ ": " ^ m) :: !diags)
      fmt
  in
  if p.Hnm_params.max_cost <> 3 * base then
    err "P001"
      "max_cost %d breaks the 3x bound: a saturated line must cost exactly \
       3 * base_min = %d (two additional hops, paper §4.2)"
      p.Hnm_params.max_cost (3 * base);
  let raw_at u = (p.Hnm_params.slope *. u) +. p.Hnm_params.offset in
  if
    Float.abs (raw_at 0.5 -. float_of_int base) > tolerance
    || Float.abs (raw_at 1.0 -. float_of_int p.Hnm_params.max_cost) > tolerance
  then
    err "P002"
      "slope %.2f / offset %.2f are not the 50%%-knee transform: the raw \
       cost must pass base_min %d at 50%% utilization and max_cost %d at \
       100%% (slope %d, offset %d)"
      p.Hnm_params.slope p.Hnm_params.offset base p.Hnm_params.max_cost
      (4 * base) (-base);
  if p.Hnm_params.max_up <> (base / 2) + 1 then
    err "P003"
      "max_up %d is not the half-hop movement limit base_min/2 + 1 = %d \
       (§5.4)"
      p.Hnm_params.max_up
      ((base / 2) + 1);
  if p.Hnm_params.max_down <> p.Hnm_params.max_up - 1 then
    err "P004"
      "max_down %d must be max_up - 1 = %d: symmetric limits lose the \
       march-up heuristic (§5.4)"
      p.Hnm_params.max_down
      (p.Hnm_params.max_up - 1);
  if p.Hnm_params.min_change <> (base / 2) - 1 then
    err "P005"
      "min_change %d is not the sub-half-hop significance threshold \
       base_min/2 - 1 = %d (§4.3)"
      p.Hnm_params.min_change
      ((base / 2) - 1);
  if p.Hnm_params.slope <= 0. then
    err "P006" "slope %.2f makes the cost non-monotone in utilization"
      p.Hnm_params.slope;
  if base < 1 || base > p.Hnm_params.max_cost
     || p.Hnm_params.max_cost > Units.max_cost
  then
    err "P007"
      "bounds [%d, %d] leave the reportable range [1, %d]" base
      p.Hnm_params.max_cost Units.max_cost;
  List.rev !diags

let check_table ?file entries =
  let per_entry = List.concat_map (check_params ?file) entries in
  let cross = ref [] in
  (* P009: one entry per line type. *)
  List.iter
    (fun lt ->
      let n =
        List.length
          (List.filter
             (fun (p : Hnm_params.t) ->
               Line_type.equal p.Hnm_params.line_type lt)
             entries)
      in
      if n > 1 then
        cross :=
          Diagnostic.error ?file ~code:"P009"
            (Printf.sprintf "%d entries for line type %s" n
               (Line_type.name lt))
          :: !cross)
    Line_type.all;
  (* P008: base_min should not grow with bandwidth. *)
  let sorted =
    List.sort
      (fun (a : Hnm_params.t) (b : Hnm_params.t) ->
        Float.compare
          (Line_type.bandwidth_bps a.Hnm_params.line_type)
          (Line_type.bandwidth_bps b.Hnm_params.line_type))
      entries
  in
  let rec scan = function
    | (slow : Hnm_params.t) :: (fast : Hnm_params.t) :: rest ->
      if
        Line_type.bandwidth_bps fast.Hnm_params.line_type
        > Line_type.bandwidth_bps slow.Hnm_params.line_type
        && fast.Hnm_params.base_min > slow.Hnm_params.base_min
      then
        cross :=
          Diagnostic.warning ?file ~code:"P008"
            (Printf.sprintf
               "%s (%.0f kb/s) idles at %d units, dearer than the slower %s \
                (%.0f kb/s) at %d — faster lines should look cheaper"
               (Line_type.name fast.Hnm_params.line_type)
               (Line_type.bandwidth_bps fast.Hnm_params.line_type /. 1000.)
               fast.Hnm_params.base_min
               (Line_type.name slow.Hnm_params.line_type)
               (Line_type.bandwidth_bps slow.Hnm_params.line_type /. 1000.)
               slow.Hnm_params.base_min)
          :: !cross;
      scan (fast :: rest)
    | _ -> ()
  in
  scan sorted;
  per_entry @ List.rev !cross

(* --- JSON parameter files --- *)

type file = {
  entries : Hnm_params.t list;
  averaging : bool;
  movement_limits : bool;
}

let ( let* ) = Result.bind

let entry_of_json json =
  let* lt_name = Result.bind (Obs_json.member "line_type" json) Obs_json.to_str in
  let* line_type =
    match Line_type.of_name lt_name with
    | Some lt -> Ok lt
    | None -> Error (Printf.sprintf "unknown line type %S" lt_name)
  in
  let int_field name =
    Result.map_error
      (fun e -> Printf.sprintf "%s, field %S of %s" e name lt_name)
      (Result.bind (Obs_json.member name json) Obs_json.to_int)
  in
  let float_field name =
    Result.map_error
      (fun e -> Printf.sprintf "%s, field %S of %s" e name lt_name)
      (Result.bind (Obs_json.member name json) Obs_json.to_float)
  in
  let* base_min = int_field "base_min" in
  let* max_cost = int_field "max_cost" in
  let* slope = float_field "slope" in
  let* offset = float_field "offset" in
  let* max_up = int_field "max_up" in
  let* max_down = int_field "max_down" in
  let* min_change = int_field "min_change" in
  Ok
    { Hnm_params.line_type; base_min; max_cost; slope; offset; max_up;
      max_down; min_change }

let rec entries_of_json = function
  | [] -> Ok []
  | json :: rest ->
    let* entry = entry_of_json json in
    let* entries = entries_of_json rest in
    Ok (entry :: entries)

let of_json json =
  match json with
  | Obs_json.List items ->
    let* entries = entries_of_json items in
    Ok { entries; averaging = true; movement_limits = true }
  | Obs_json.Obj _ ->
    let* tables =
      match Obs_json.member "tables" json with
      | Ok (Obs_json.List items) -> Ok items
      | Ok _ -> Error "\"tables\" must be a list"
      | Error e -> Error e
    in
    let* entries = entries_of_json tables in
    let bool_field name =
      match Obs_json.member name json with
      | Ok v -> Obs_json.to_bool v
      | Error _ -> Ok true
    in
    let* averaging = bool_field "averaging" in
    let* movement_limits = bool_field "movement_limits" in
    Ok { entries; averaging; movement_limits }
  | _ -> Error "expected a list of entries or {\"tables\": [...]}"

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error message -> Error message
  | text -> (
    match Obs_json.of_string text with
    | Error e -> Error (Printf.sprintf "%s: invalid JSON: %s" path e)
    | Ok json ->
      Result.map_error (fun e -> Printf.sprintf "%s: %s" path e) (of_json json))

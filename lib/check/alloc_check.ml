(* A0xx — hot-path allocation analysis.

   The repo's performance story (ROADMAP item on zero-allocation steady
   state) rests on a set of functions that must not allocate: the
   per-period metric sweep, the batch [_into] APIs, load assignment, the
   event queue, the SPF repair loop, the tracer's enabled path.  Those
   functions carry a [@@hot_path] attribute at their definition.

   This pass proves the property against what the compiler actually
   emitted, not against the source: a `--profile check` build captures
   each unit's Cmm dump (`<module>.cmx.dump`, see the root dune file),
   in which every allocation is an explicit `(alloc{dbg} hdr …)` node or
   a call to an allocating runtime primitive.  We read the allowlist out
   of the .cmt files (so annotation and analysis can never drift apart),
   find each annotated function's compiled body in its unit's dump by
   symbol demangling, and report every allocation site with the source
   location the compiler recorded.

   Codes (catalogue in DESIGN.md §8):
   - A001 error   allocation site inside a [@@hot_path] function
   - A002 error   annotated function has no native-dump coverage
   - A003 warning an artifact could not be read or parsed
   - A004 info    scan summary (functions checked, units scanned)
   - A000 warning no artifacts / no annotations found (configuration) *)

(* --- Cmm dump parsing --- *)

(* Allocating runtime primitives that appear as extcalls rather than
   alloc nodes.  caml_modify / caml_initialize are write barriers, not
   allocations, and checkbound is a bounds check — all deliberately
   absent. *)
let allocating_extcalls =
  [ "caml_make_vect";
    "caml_make_float_vect";
    "caml_make_array";
    "caml_alloc_dummy";
    "caml_alloc_dummy_float";
    "caml_obj_dup" ]

type site = {
  dbg : string;  (* raw debuginfo chain, outermost frame first *)
  what : string;  (* human description of the allocation *)
}

type dump_fun = { sym : string; sites : site list }

(* "{file.ml:12,3-20;other.ml:4,1-9}" -> outermost frame "file.ml", 12.
   The outermost frame is the one inside the annotated function; inner
   frames are inlined callees. *)
let site_location dbg =
  if String.length dbg < 2 || dbg.[0] <> '{' then None
  else
    let body = String.sub dbg 1 (String.length dbg - 2) in
    let first =
      match String.index_opt body ';' with
      | Some i -> String.sub body 0 i
      | None -> body
    in
    match String.rindex_opt first ':' with
    | None -> None
    | Some i -> (
      let file = String.sub first 0 i in
      let rest = String.sub first (i + 1) (String.length first - i - 1) in
      let line_s =
        match String.index_opt rest ',' with
        | Some j -> String.sub rest 0 j
        | None -> rest
      in
      match int_of_string_opt line_s with
      | Some line -> Some (file, line)
      | None -> None)

(* OCaml block headers encode the size in the upper bits and the tag in
   the low byte; a handful of tags identify what boxed. *)
let describe_header hdr =
  let tag = hdr land 0xff in
  let wosize = hdr lsr 10 in
  match tag with
  | 253 -> "boxes a float"
  | 254 -> Printf.sprintf "allocates a float array (%d elements)" wosize
  | 252 -> "allocates a string"
  | 247 -> Printf.sprintf "allocates a closure (%d words)" wosize
  | 0 -> Printf.sprintf "allocates a block (%d words)" wosize
  | t -> Printf.sprintf "allocates a tag-%d block (%d words)" t wosize

let is_ident_char = function
  | ' ' | '\n' | '\t' | '\r' | '(' | ')' | '"' -> false
  | _ -> true

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* One linear scan over the dump text.  Function forms are top-level
   `(function{dbg} symbol …)` s-expressions; we attribute every alloc
   node and allocating extcall to the most recently opened function.
   Double-quoted strings are skipped so parens and keywords inside
   literals cannot confuse the scan. *)
let parse_dump text =
  let n = String.length text in
  let funs = ref [] in
  let sym = ref "" in
  let sites = ref [] in
  let flush () =
    if !sym <> "" then funs := { sym = !sym; sites = List.rev !sites } :: !funs;
    sym := "";
    sites := []
  in
  let i = ref 0 in
  let read_token_at j =
    let k = ref j in
    while !k < n && is_ident_char text.[!k] do incr k done;
    (String.sub text j (!k - j), !k)
  in
  let skip_ws j =
    let k = ref j in
    while !k < n && (text.[!k] = ' ' || text.[!k] = '\n' || text.[!k] = '\t') do
      incr k
    done;
    !k
  in
  while !i < n do
    match text.[!i] with
    | '"' ->
      (* Skip string literals, honoring backslash escapes. *)
      incr i;
      while
        !i < n && text.[!i] <> '"'
      do
        if text.[!i] = '\\' && !i + 1 < n then i := !i + 2 else incr i
      done;
      incr i
    | '(' ->
      let tok, after = read_token_at (!i + 1) in
      if starts_with "function" tok then begin
        flush ();
        let j = skip_ws after in
        let s, _ = read_token_at j in
        sym := s
      end
      else if !sym <> "" && starts_with "alloc" tok then begin
        let dbg = String.sub tok 5 (String.length tok - 5) in
        let j = skip_ws after in
        let hdr_tok, _ = read_token_at j in
        let what =
          match int_of_string_opt hdr_tok with
          | Some hdr -> describe_header hdr
          | None -> "allocates a block"
        in
        sites := { dbg; what } :: !sites
      end
      else if !sym <> "" && tok = "extcall" then begin
        let j = skip_ws after in
        if j < n && text.[j] = '"' then begin
          let k = ref (j + 1) in
          while !k < n && text.[!k] <> '"' do incr k done;
          let name = String.sub text (j + 1) (!k - j - 1) in
          if List.mem name allocating_extcalls then begin
            (* Debuginfo, when present, is glued to the closing quote. *)
            let dbg_tok, _ = read_token_at (!k + 1) in
            sites := { dbg = dbg_tok; what = "calls " ^ name } :: !sites
          end;
          i := !k
        end
      end;
      i := after
    | _ -> incr i
  done;
  flush ();
  List.rev !funs

(* "camlRouting_spf__Dijkstra.compute_flat_s_538" ->
   ("Routing_spf__Dijkstra", "compute_flat_s").  The numeric stamp the
   compiler appends is stripped; nested named bindings keep their source
   name the same way. *)
let demangle sym =
  if not (starts_with "caml" sym) then None
  else
    let rest = String.sub sym 4 (String.length sym - 4) in
    match String.index_opt rest '.' with
    | None -> None
    | Some i ->
      let unit = String.sub rest 0 i in
      let name = String.sub rest (i + 1) (String.length rest - i - 1) in
      let base =
        match String.rindex_opt name '_' with
        | Some j
          when j + 1 < String.length name
               && String.for_all
                    (fun c -> c >= '0' && c <= '9')
                    (String.sub name (j + 1) (String.length name - j - 1)) ->
          String.sub name 0 j
        | _ -> name
      in
      Some (unit, base)

(* --- The pass --- *)

(* The dump for unit "Routing_spf__Dijkstra" is named
   "routing_spf__Dijkstra.cmx.dump" (dune lowercases the first letter of
   the file name only). *)
let dump_matches_unit path unit =
  let base = Filename.basename path in
  match Filename.chop_suffix_opt ~suffix:".cmx.dump" base with
  | None -> false
  | Some stem -> String.capitalize_ascii stem = unit

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check ~roots =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let cmts = Cmt_util.find_all ~ext:".cmt" roots in
  let dumps = Cmt_util.find_all ~ext:".cmx.dump" roots in
  (* Allowlist: (unit, annotated binding) pairs out of the .cmt files. *)
  let annotated = ref [] in
  List.iter
    (fun path ->
      match Cmt_util.read_cmt path with
      | Error reason ->
        add
          (Diagnostic.warning ~file:path ~code:"A003"
             (Printf.sprintf "skipping artifact: %s" reason))
      | Ok cmt ->
        List.iter
          (fun a -> annotated := (cmt.Cmt_util.modname, a) :: !annotated)
          (Cmt_util.hot_path_bindings cmt.Cmt_util.structure))
    cmts;
  let annotated = List.rev !annotated in
  if cmts = [] then
    add
      (Diagnostic.warning ~code:"A000"
         (Printf.sprintf
            "no .cmt artifacts under %s — wrong --build-dir, or not built \
             yet?"
            (String.concat ", " roots)))
  else if annotated = [] then
    add
      (Diagnostic.warning ~code:"A000"
         "no [@@hot_path] annotations found in any compilation unit");
  (* Parse only the dumps for units that carry annotations. *)
  let units = List.sort_uniq compare (List.map fst annotated) in
  let parsed =
    List.filter_map
      (fun unit ->
        match List.find_opt (fun p -> dump_matches_unit p unit) dumps with
        | None -> None
        | Some path -> (
          match parse_dump (read_file path) with
          | exception e ->
            add
              (Diagnostic.warning ~file:path ~code:"A003"
                 (Printf.sprintf "failed to parse Cmm dump: %s"
                    (Printexc.to_string e)));
            None
          | funs -> Some (unit, funs)))
      units
  in
  let checked = ref 0 in
  List.iter
    (fun (unit, (a : Cmt_util.annotated)) ->
      match List.assoc_opt unit parsed with
      | None ->
        add
          (Diagnostic.error ~file:a.file ~line:a.line ~code:"A002"
             (Printf.sprintf
                "[@@hot_path] %s has no native dump coverage — run `dune \
                 clean && DUNE_CACHE=disabled dune build --profile check \
                 --sandbox none @all` so %s.cmx.dump is emitted, then \
                 invoke _build/default/bin/arpanet_check.exe directly (a \
                 later dune command prunes the dumps)"
                a.name unit))
      | Some funs -> (
        let matching =
          List.filter
            (fun f ->
              match demangle f.sym with
              | Some (u, base) -> u = unit && base = a.name
              | None -> false)
            funs
        in
        match matching with
        | [] ->
          add
            (Diagnostic.error ~file:a.file ~line:a.line ~code:"A002"
               (Printf.sprintf
                  "[@@hot_path] %s not found in %s's native dump (fully \
                   inlined away, or renamed?)"
                  a.name unit))
        | _ ->
          incr checked;
          List.iter
            (fun f ->
              List.iter
                (fun s ->
                  let file, line =
                    match site_location s.dbg with
                    | Some (file, line) -> (file, line)
                    | None -> (a.file, a.line)
                  in
                  add
                    (Diagnostic.error ~file ~line ~code:"A001"
                       (Printf.sprintf
                          "hot path %s.%s %s%s — [@@hot_path] functions \
                           must be allocation-free"
                          unit a.name s.what
                          (if s.dbg = "" then ""
                           else Printf.sprintf " (at %s)" s.dbg))))
                f.sites)
            matching))
    annotated;
  if annotated <> [] then begin
    let flagged =
      List.length (List.filter (fun d -> d.Diagnostic.code = "A001") !diags)
    in
    add
      (Diagnostic.info ~code:"A004"
         (Printf.sprintf
            "alloc check: %d hot-path function(s) across %d unit(s) checked \
             against %d Cmm dump(s); %d allocation site(s) flagged"
            !checked (List.length units) (List.length parsed) flagged))
  end;
  List.rev !diags

(* D0xx — domain-safety lint over typed ASTs.

   The L0xx source lint (Src_check) catches textual hazards in the
   Domain-parallel SPF path; this pass works on what the type checker
   saw.  It finds every closure handed to [Domain_pool.parallel_for] /
   [parallel_for_with] / [parallel_for_dynamic] /
   [parallel_for_dynamic_with] in the build's .cmt files and flags
   shared mutable state the body captures from its enclosing scope:

   - D001 error   a captured ref is assigned (:=, incr, decr) in the body
   - D002 error   a captured record's mutable field is set in the body
   - D003 error   a captured Bytes.t is written in the body
   - D004 warning a captured array is written at an index that does not
                  depend on any body-local variable (every worker hits
                  the same slot)
   - D005 info    a captured array is written both by the parallel body
                  and elsewhere in the same scope (the sequential
                  fallback pattern — benign only while the two writers
                  cover disjoint index ranges)
   - D000 warning a .cmt artifact could not be read

   What makes the existing code clean under these rules, by design:
   per-worker scratch arrives as a body parameter (so it is body-local,
   not captured), result arrays are written at indices derived from the
   body's loop parameter (disjoint by construction, surfaced as D005
   only when a sequential fallback shares them), and cross-domain
   counters go through Atomic, which never appears as a raw mutation.
   Catalogue in DESIGN.md §8. *)

open Typedtree

let parallel_entrypoints =
  [ "Domain_pool.parallel_for";
    "Domain_pool.parallel_for_with";
    "Domain_pool.parallel_for_dynamic";
    "Domain_pool.parallel_for_dynamic_with" ]

let path_matches names p =
  let n = Path.name p in
  List.exists
    (fun s -> String.equal n s || String.ends_with ~suffix:("." ^ s) n)
    names

let path_equals names p =
  let n = Path.name p in
  List.exists (String.equal n) names

let ref_writers = [ "Stdlib.:="; "Stdlib.incr"; "Stdlib.decr" ]

let array_writers = [ "Stdlib.Array.set"; "Stdlib.Array.unsafe_set" ]

let bytes_writers = [ "Stdlib.Bytes.set"; "Stdlib.Bytes.unsafe_set" ]

(* The storage a write lands in: the head identifier of the subject
   expression.  [t.trees.(i) <- v] writes through field [trees] of [t],
   so the head is [t]; module-level state ([Pdot]) is shared by
   definition. *)
type head = Local of Ident.t | Global of Path.t

let rec head_of e =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> Some (Local id)
  | Texp_ident (p, _, _) -> Some (Global p)
  | Texp_field (e, _, _) -> head_of e
  | _ -> None

(* Human name of the storage being written: the head plus any field
   path, e.g. "t.trees". *)
let rec subject_name e =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Path.name p
  | Texp_field (e, _, lbl) -> subject_name e ^ "." ^ lbl.Types.lbl_name
  | _ -> "<expression>"

(* Idents bound anywhere inside the expression: parameters, lets, match
   cases, for-loop indices.  A write whose head is NOT in this set
   mutates captured state. *)
let bound_idents fexpr =
  let tbl = Hashtbl.create 64 in
  let add id = Hashtbl.replace tbl (Ident.unique_name id) () in
  let pat : type k. Tast_iterator.iterator -> k general_pattern -> unit =
   fun sub p ->
    (match p.pat_desc with
    | Tpat_var (id, _) -> add id
    | Tpat_alias (_, id, _) -> add id
    | _ -> ());
    Tast_iterator.default_iterator.pat sub p
  in
  let expr sub e =
    (match e.exp_desc with
    | Texp_for (id, _, _, _, _, _) -> add id
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with pat; expr } in
  it.expr it fexpr;
  tbl

let is_bound bound id = Hashtbl.mem bound (Ident.unique_name id)

(* Does the expression mention any body-local variable?  Used on index
   expressions: [out.(k) <- …] with [k] a body parameter is the
   partitioned-write idiom; [out.(0) <- …] is a rendezvous. *)
let mentions_bound bound e =
  let found = ref false in
  let expr sub e =
    (match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) when is_bound bound id -> found := true
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it e;
  !found

let loc_file_line (loc : Location.t) =
  (loc.Location.loc_start.Lexing.pos_fname, loc.Location.loc_start.Lexing.pos_lnum)

(* Positional arguments of an application, in order. *)
let nolabel_args args =
  List.filter_map
    (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
    args

type array_write = {
  head : head;
  name : string;
  loc : Location.t;
  index_local : bool;
}

(* All mutation sites inside one expression: captured-ref assignments,
   setfields, Bytes writes, and every array write (classified by whether
   its index depends on a body-local). *)
let scan_writes ~bound fexpr ~on_ref ~on_setfield ~on_bytes ~on_array =
  let classify_head e =
    match head_of e with
    | Some (Local id) when is_bound bound id -> None
    | Some h -> Some h
    | None -> None
  in
  let expr sub e =
    (match e.exp_desc with
    | Texp_apply (f, args) -> (
      match f.exp_desc with
      | Texp_ident (p, _, _) -> (
        let args = nolabel_args args in
        if path_equals ref_writers p then
          match args with
          | subject :: _ -> (
            match classify_head subject with
            | Some _ -> on_ref (subject_name subject) e.exp_loc
            | None -> ())
          | [] -> ()
        else if path_equals bytes_writers p then
          match args with
          | subject :: _ -> (
            match classify_head subject with
            | Some _ -> on_bytes (subject_name subject) e.exp_loc
            | None -> ())
          | [] -> ()
        else if path_equals array_writers p then
          match args with
          | subject :: index :: _ -> (
            match classify_head subject with
            | Some h ->
              on_array
                { head = h;
                  name = subject_name subject;
                  loc = e.exp_loc;
                  index_local = mentions_bound bound index }
            | None -> ())
          | _ -> ())
      | _ -> ())
    | Texp_setfield (subject, _, _, _) -> (
      match classify_head subject with
      | Some _ -> on_setfield (subject_name subject) e.exp_loc
      | None -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.expr it fexpr

let is_function e = match e.exp_desc with Texp_function _ -> true | _ -> false

(* The body argument of a [parallel_for] application: the last positional
   argument, resolved through let-bound function names ([let one s i = …;
   parallel_for_with … n one]) when needed. *)
let body_of_call fn_map args =
  match List.rev (nolabel_args args) with
  | [] -> None
  | last :: _ -> (
    if is_function last then Some last
    else
      match last.exp_desc with
      | Texp_ident (Path.Pident id, _, _) ->
        Hashtbl.find_opt fn_map (Ident.unique_name id)
      | _ -> None)

let check_unit (cmt : Cmt_util.cmt) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* Pass 1: every let-bound function in the unit, keyed by ident. *)
  let fn_map = Hashtbl.create 64 in
  let collect_vb sub vb =
    (match vb.vb_pat.pat_desc with
    | Tpat_var (id, _) when is_function vb.vb_expr ->
      Hashtbl.replace fn_map (Ident.unique_name id) vb.vb_expr
    | _ -> ());
    Tast_iterator.default_iterator.value_binding sub vb
  in
  let it1 =
    { Tast_iterator.default_iterator with value_binding = collect_vb }
  in
  it1.structure it1 cmt.Cmt_util.structure;
  (* Pass 2: parallel_for call sites and their bodies. *)
  let bodies = ref [] in
  let find_calls sub e =
    (match e.exp_desc with
    | Texp_apply (f, args) -> (
      match f.exp_desc with
      | Texp_ident (p, _, _) when path_matches parallel_entrypoints p -> (
        match body_of_call fn_map args with
        | Some body -> bodies := (Path.name p, e.exp_loc, body) :: !bodies
        | None -> ())
      | _ -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let it2 = { Tast_iterator.default_iterator with expr = find_calls } in
  it2.structure it2 cmt.Cmt_util.structure;
  let bodies = List.rev !bodies in
  (* Pass 3 per body: captured-state writes. *)
  let body_array_writes = Hashtbl.create 16 in
  (* ident -> (call site line, write loc) for D005 cross-referencing *)
  let body_write_locs = Hashtbl.create 16 in
  List.iter
    (fun (entry, call_loc, body) ->
      let bound = bound_idents body in
      let _, call_line = loc_file_line call_loc in
      let context name =
        Printf.sprintf "%s captured by the %s body at line %d" name entry
          call_line
      in
      scan_writes ~bound body
        ~on_ref:(fun name loc ->
          let file, line = loc_file_line loc in
          add
            (Diagnostic.error ~file ~line ~code:"D001"
               (Printf.sprintf
                  "parallel body mutates shared ref %s — every worker races \
                   on it; use per-worker state (parallel_for_with ~init) or \
                   Atomic"
                  (context name))))
        ~on_setfield:(fun name loc ->
          let file, line = loc_file_line loc in
          add
            (Diagnostic.error ~file ~line ~code:"D002"
               (Printf.sprintf
                  "parallel body sets a mutable field of %s — unsynchronized \
                   cross-domain write; use per-worker scratch or Atomic"
                  (context name))))
        ~on_bytes:(fun name loc ->
          let file, line = loc_file_line loc in
          add
            (Diagnostic.error ~file ~line ~code:"D003"
               (Printf.sprintf
                  "parallel body writes shared bytes %s — unsynchronized \
                   cross-domain write"
                  (context name))))
        ~on_array:(fun w ->
          Hashtbl.replace body_write_locs w.loc ();
          (match w.head with
          | Local id ->
            if not (Hashtbl.mem body_array_writes (Ident.unique_name id)) then
              Hashtbl.add body_array_writes (Ident.unique_name id)
                (w.name, call_line, w.loc)
          | Global _ -> ());
          if not w.index_local then begin
            let file, line = loc_file_line w.loc in
            add
              (Diagnostic.warning ~file ~line ~code:"D004"
                 (Printf.sprintf
                    "parallel body writes array %s at an index independent \
                     of the body's own variables — every worker writes the \
                     same slot"
                    (context w.name)))
          end))
    bodies;
  (* Pass 4: D005 — the same captured array also written outside any
     parallel body (the sequential-fallback pattern). *)
  if Hashtbl.length body_array_writes > 0 then begin
    let outside sub e =
      (match e.exp_desc with
      | Texp_apply (f, args) -> (
        match f.exp_desc with
        | Texp_ident (p, _, _) when path_equals array_writers p -> (
          match nolabel_args args with
          | subject :: _ -> (
            match head_of subject with
            | Some (Local id)
              when Hashtbl.mem body_array_writes (Ident.unique_name id)
                   && not (Hashtbl.mem body_write_locs e.exp_loc) ->
              let name, call_line, _ =
                Hashtbl.find body_array_writes (Ident.unique_name id)
              in
              let file, line = loc_file_line e.exp_loc in
              add
                (Diagnostic.info ~file ~line ~code:"D005"
                   (Printf.sprintf
                      "array %s is written here and by the parallel body of \
                       the Domain_pool call at line %d (sequential-fallback \
                       pattern) — safe only while the two writers cover \
                       disjoint index ranges"
                      name call_line))
            | _ -> ())
          | [] -> ())
        | _ -> ())
      | _ -> ());
      Tast_iterator.default_iterator.expr sub e
    in
    let it4 = { Tast_iterator.default_iterator with expr = outside } in
    it4.structure it4 cmt.Cmt_util.structure
  end;
  List.rev !diags

let check ~roots =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let cmts = Cmt_util.find_all ~ext:".cmt" roots in
  if cmts = [] then
    add
      (Diagnostic.warning ~code:"D000"
         (Printf.sprintf "no .cmt artifacts under %s — wrong --build-dir?"
            (String.concat ", " roots)));
  List.iter
    (fun path ->
      match Cmt_util.read_cmt path with
      | Error reason ->
        add
          (Diagnostic.warning ~file:path ~code:"D000"
             (Printf.sprintf "skipping artifact: %s" reason))
      | Ok cmt -> List.iter add (check_unit cmt))
    cmts;
  List.rev !diags

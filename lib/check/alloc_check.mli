(** A0xx — hot-path allocation analysis over compiler-emitted Cmm dumps.

    Functions annotated [@@hot_path] are the steady-state paths the
    simulator runs every routing period; the performance model (and the
    ROADMAP's zero-allocation gate) requires them not to allocate.  This
    pass reads the allowlist out of the build's [.cmt] files, locates
    each annotated function's compiled body in its unit's
    [<module>.cmx.dump] (emitted by [dune build --profile check], see the
    root dune file), and reports every allocation site the compiler
    placed there — [A001] errors with the source [file:line] the
    compiler recorded, [A002] when an annotated function has no dump
    coverage, [A003]/[A000] for artifact problems, [A004] as an info
    summary.  Catalogue in DESIGN.md §8. *)

val check : roots:string list -> Diagnostic.t list
(** [check ~roots] scans the directories (typically
    [_build/default/lib]) recursively for [.cmt] and [.cmx.dump]
    artifacts and cross-checks them.  Diagnostics come back in emission
    order; callers merge and sort. *)

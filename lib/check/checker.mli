open! Import

(** Orchestration: the full analysis pipeline behind [arpanet_check]
    and [arpanet_sim --check].

    A scenario file flows through {!Scenario_check} (S0xx), then — on
    the best-effort parse — {!Topology_check} (T0xx) and, unless
    disabled, {!Stability_check} (R0xx) with whatever parameter table
    is in force.  Parameter files flow through {!Params_check} (P0xx)
    and feed the stability pass.  Exit status is
    {!Diagnostic.exit_code} of everything found. *)

type options = {
  stability : bool;  (** run the R0xx sweep (response-map cost) *)
  params : Params_check.file option;
      (** user table overriding the built-in {!Hnm_params} defaults *)
}

val default_options : options
(** Stability on, built-in parameter table. *)

val check_scenario_text :
  ?options:options -> ?file:string -> string -> Diagnostic.t list
(** All passes over one scenario's text. *)

val check_scenario_file : ?options:options -> string -> Diagnostic.t list

val check_params_file : string -> Diagnostic.t list * Params_check.file option
(** P0xx over a JSON parameter file; decode failures are a single
    [P000] error. *)

val check_default_table : unit -> Diagnostic.t list
(** P0xx over the built-in {!Hnm_params.all} — what [arpanet_check]
    runs with no arguments, and a permanent self-check that the shipped
    constants satisfy the paper's own invariants. *)

open! Import

type options = {
  stability : bool;
  params : Params_check.file option;
}

let default_options = { stability = true; params = None }

let scenario_passes ?(options = default_options) ?file diags (t : Script.t) =
  let topology = Topology_check.check ?file t.Script.graph t.Script.traffic in
  let stability =
    if not options.stability then []
    else begin
      let entries, averaging, movement_limits =
        match options.params with
        | None -> ([], true, true)
        | Some { Params_check.entries; averaging; movement_limits } ->
          (entries, averaging, movement_limits)
      in
      Stability_check.check ?file ~averaging ~movement_limits ~entries
        t.Script.graph t.Script.traffic
    end
  in
  diags @ topology @ stability

let check_scenario_text ?options ?file text =
  let diags, t = Scenario_check.check_text ?file text in
  scenario_passes ?options ?file diags t

let check_scenario_file ?options path =
  match Scenario_check.check_file path with
  | diags, None -> diags
  | diags, Some t -> scenario_passes ?options ~file:path diags t

let check_params_file path =
  match Params_check.load path with
  | Error message ->
    ([ Diagnostic.error ~file:path ~code:"P000" message ], None)
  | Ok file ->
    (Params_check.check_table ~file:path file.Params_check.entries, Some file)

let check_default_table () = Params_check.check_table Hnm_params.all

open! Import

(** Compiler-style diagnostics shared by every [routing_check] pass.

    A diagnostic carries a {e stable code} (["T002"], ["P001"], …) that
    tools and tests key on, a severity, an optional source location
    (scenario and parameter files are line-oriented), and a human
    message.  The code families:

    - [T0xx] — topology audit ({!Topology_check})
    - [P0xx] — HNM parameter table lint ({!Params_check})
    - [S0xx] — scenario script check ({!Scenario_check})
    - [R0xx] — static routing-loop stability ({!Stability_check})
    - [L0xx] — source lint for the Domain-parallel SPF path
      ({!Src_check})
    - [A0xx] — hot-path allocation analysis over Cmm dumps
      ({!Alloc_check})
    - [D0xx] — domain-safety lint over typed ASTs ({!Domains_check})

    The catalogue lives in DESIGN.md §8. *)

type severity = Info | Warning | Error

type location = { file : string; line : int option }

type t = {
  code : string;  (** stable, e.g. ["T002"]; never reused across meanings *)
  severity : severity;
  location : location option;
  message : string;
}

val info : ?file:string -> ?line:int -> code:string -> string -> t

val warning : ?file:string -> ?line:int -> code:string -> string -> t

val error : ?file:string -> ?line:int -> code:string -> string -> t

val severity_name : severity -> string

val compare_severity : severity -> severity -> int
(** [Info < Warning < Error]. *)

val max_severity : t list -> severity
(** [Info] for the empty list. *)

val exit_code : t list -> int
(** What a checking process should exit with: 0 when nothing exceeds
    [Info], 1 when the worst finding is a [Warning], 2 on [Error]. *)

val count : severity -> t list -> int

val sort : t list -> t list
(** Total order for reports: by file, then line, then code, then
    severity, then message — every field participates, so the sorted
    report is byte-identical regardless of the order passes ran or
    emitted. *)

val merge : t list -> t list
(** {!sort} plus site-deduplication: diagnostics with the same code at
    the same location (e.g. the same line flagged by two passes) collapse
    into one, keeping the highest severity and, among messages at that
    severity, the lexicographically least.  The result is a pure function
    of the input {e set}. *)

val family : string -> string
(** The code's family key: the letter prefix and first digit, e.g.
    [family "T002" = "T0xx"] and [family "S101" = "S1xx"]. *)

val pp : Format.formatter -> t -> unit
(** One line, [file:line: severity[CODE]: message]. *)

val pp_report : Format.formatter -> t list -> unit
(** All diagnostics ({!sort}ed) followed by a one-line summary count. *)

val to_json : t -> Obs_json.t
(** [{"code":…,"severity":…,"file":…,"line":…,"message":…}]; the file
    and line fields are omitted when unknown. *)

val schema_version : int
(** Version of the [--json] report shape.  Bumped when fields change
    meaning; adding fields does not bump it — consumers must tolerate
    unknown fields. *)

val report_to_json : t list -> Obs_json.t
(** [{"schema_version":2,"diagnostics":[…],"errors":n,"warnings":n,
    "infos":n,"summary":{…}}] — the machine-readable form behind
    [arpanet_check --json].  [summary] carries the per-severity counts
    and a [by_family] object keyed by {!family}. *)

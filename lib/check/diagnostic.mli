open! Import

(** Compiler-style diagnostics shared by every [routing_check] pass.

    A diagnostic carries a {e stable code} (["T002"], ["P001"], …) that
    tools and tests key on, a severity, an optional source location
    (scenario and parameter files are line-oriented), and a human
    message.  The code families:

    - [T0xx] — topology audit ({!Topology_check})
    - [P0xx] — HNM parameter table lint ({!Params_check})
    - [S0xx] — scenario script check ({!Scenario_check})
    - [R0xx] — static routing-loop stability ({!Stability_check})
    - [L0xx] — source lint for the Domain-parallel SPF path
      ({!Src_check})

    The catalogue lives in DESIGN.md §8. *)

type severity = Info | Warning | Error

type location = { file : string; line : int option }

type t = {
  code : string;  (** stable, e.g. ["T002"]; never reused across meanings *)
  severity : severity;
  location : location option;
  message : string;
}

val info : ?file:string -> ?line:int -> code:string -> string -> t

val warning : ?file:string -> ?line:int -> code:string -> string -> t

val error : ?file:string -> ?line:int -> code:string -> string -> t

val severity_name : severity -> string

val compare_severity : severity -> severity -> int
(** [Info < Warning < Error]. *)

val max_severity : t list -> severity
(** [Info] for the empty list. *)

val exit_code : t list -> int
(** What a checking process should exit with: 0 when nothing exceeds
    [Info], 1 when the worst finding is a [Warning], 2 on [Error]. *)

val count : severity -> t list -> int

val sort : t list -> t list
(** Stable order for reports: by file, then line, then code. *)

val pp : Format.formatter -> t -> unit
(** One line, [file:line: severity[CODE]: message]. *)

val pp_report : Format.formatter -> t list -> unit
(** All diagnostics ({!sort}ed) followed by a one-line summary count. *)

val to_json : t -> Obs_json.t
(** [{"code":…,"severity":…,"file":…,"line":…,"message":…}]; the file
    and line fields are omitted when unknown. *)

val report_to_json : t list -> Obs_json.t
(** [{"diagnostics":[…],"errors":n,"warnings":n,"infos":n}] — the
    machine-readable form behind [arpanet_check --json]. *)

(** D0xx — domain-safety lint over the build's typed ASTs.

    Finds every closure passed to [Domain_pool.parallel_for] /
    [parallel_for_with] (including ones bound to a name first) and flags
    shared mutable state the body captures from its enclosing scope:
    captured refs assigned ([D001], error), mutable record fields set
    ([D002], error), Bytes writes ([D003], error), array writes whose
    index does not depend on a body-local variable ([D004], warning),
    and arrays written by both the parallel body and the enclosing
    sequential fallback ([D005], info).  [D000] flags unreadable
    artifacts.  Per-worker scratch passed as a body parameter and
    [Atomic] operations are exempt by construction.  Catalogue in
    DESIGN.md §8. *)

val check : roots:string list -> Diagnostic.t list
(** [check ~roots] scans the directories (typically
    [_build/default/lib]) recursively for [.cmt] artifacts and lints
    every compilation unit found.  Diagnostics come back in emission
    order; callers merge and sort. *)

open! Import

let default_loads = [ 0.5; 1.0; 1.5; 2.0; 3.0 ]

(* One representative link per line type in service: the headroom sweep
   depends on the table entry and the network-wide response map, not on
   which physical trunk of that type we probe. *)
let representatives g =
  List.rev
    (Graph.fold_links g ~init:[] ~f:(fun acc (l : Link.t) ->
         if
           List.exists
             (fun (r : Link.t) ->
               Line_type.equal r.Link.line_type l.Link.line_type)
             acc
         then acc
         else l :: acc))

let check ?file ?(averaging = true) ?(movement_limits = true) ?(entries = [])
    ?(loads = default_loads) g tm =
  if Graph.link_count g = 0 || Traffic_matrix.total_bps tm <= 0. then []
  else begin
    let response = Response_map.compute g tm in
    let params_for lt =
      match
        List.find_opt
          (fun (p : Hnm_params.t) -> Line_type.equal p.Hnm_params.line_type lt)
          entries
      with
      | Some p -> p
      | None -> Hnm_params.for_line_type lt
    in
    let link_name (l : Link.t) =
      Printf.sprintf "%s->%s"
        (Graph.node_name g l.Link.src)
        (Graph.node_name g l.Link.dst)
    in
    let diags = ref [] in
    (* R001: every link, at the load the traffic matrix actually offers
       it (its min-hop utilization — the Figs 9–12 normalizer).  This is
       the configuration the first routing period will face. *)
    let worst = ref None in
    Graph.iter_links g (fun (l : Link.t) ->
        let offered_load = Response_map.base_utilization response g tm l in
        if offered_load > 0. then begin
          let r =
            Stability.analyze_hnm ~averaging
              (params_for l.Link.line_type)
              l response ~offered_load
          in
          (match !worst with
          | Some (gain, _, _) when gain >= r.Stability.effective_gain -> ()
          | _ -> worst := Some (r.Stability.effective_gain, l, offered_load));
          if not r.Stability.stable then
            if averaging && movement_limits then
              (* The full HNM pipeline: the fixed point is unstable but
                 the per-period half-hop clamps bound the cycle to the
                 §5.4 march-up ripple — by design, not a misconfig. *)
              diags :=
                Diagnostic.info ?file ~code:"R004"
                  (Printf.sprintf
                     "%s (%s) at its configured offered load %.2f sits at \
                      an unstable fixed point (effective gain %.2f); the \
                      half-hop movement limits bound the oscillation to \
                      the §5.4 march-up ripple"
                     (link_name l)
                     (Line_type.name l.Link.line_type)
                     offered_load r.Stability.effective_gain)
                :: !diags
            else
              diags :=
                Diagnostic.warning ?file ~code:"R001"
                  (Printf.sprintf
                     "%s (%s) at its configured offered load %.2f: \
                      effective loop gain %.2f >= 1 (raw %.2f; %s) — this \
                      parameter set reintroduces §3.3 oscillation"
                     (link_name l)
                     (Line_type.name l.Link.line_type)
                     offered_load r.Stability.effective_gain
                     r.Stability.raw_gain
                     (if not averaging then "averaging filter off"
                      else "movement limits off"))
                :: !diags
        end);
    (match !worst with
    | None -> ()
    | Some (gain, l, load) ->
      diags :=
        Diagnostic.info ?file ~code:"R002"
          (Printf.sprintf
             "static stability at configured load: worst effective loop \
              gain %.2f (%s at offered load %.2f)"
             gain (link_name l) load)
        :: !diags);
    (* R003: headroom — the smallest hypothetical offered load in the
       sweep at which each line type's loop goes unstable, i.e. how much
       traffic growth this topology + table can absorb. *)
    List.iter
      (fun (l : Link.t) ->
        let lt = l.Link.line_type in
        let params = params_for lt in
        let unstable_at =
          List.find_opt
            (fun offered_load ->
              not
                (Stability.analyze_hnm ~averaging params l response
                   ~offered_load)
                  .Stability.stable)
            (List.sort Float.compare loads)
        in
        match unstable_at with
        | None -> ()
        | Some load ->
          diags :=
            Diagnostic.info ?file ~code:"R003"
              (Printf.sprintf
                 "%s links would oscillate if offered load grew to %.2fx \
                  a link's capacity (smallest unstable load in the sweep)"
                 (Line_type.name lt) load)
            :: !diags)
      (representatives g);
    List.rev !diags
  end

(* Substrate aliases opened by every module in this library. *)

module Node = Routing_topology.Node
module Line_type = Routing_topology.Line_type
module Link = Routing_topology.Link
module Graph = Routing_topology.Graph
module Traffic_matrix = Routing_topology.Traffic_matrix
module Generators = Routing_topology.Generators
module Serial = Routing_topology.Serial
module Graph_analysis = Routing_topology.Graph_analysis
module Metric = Routing_metric.Metric
module Units = Routing_metric.Units
module Hnm = Routing_metric.Hnm
module Hnm_params = Routing_metric.Hnm_params
module Response_map = Routing_equilibrium.Response_map
module Stability = Routing_equilibrium.Stability
module Script = Routing_sim.Script
module Sweep_spec = Routing_sweep.Sweep_spec
module Obs_json = Routing_obs.Json

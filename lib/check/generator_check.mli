open! Import

(** T02x — validation of generated-topology specs.

    The scaling benchmarks and experiments describe their topologies as
    small JSON specs ({!Generators.spec}); generating a 10^5-node graph
    from a bad spec wastes minutes before failing, so this pass rejects
    one before any generation happens:

    - [T020] (error) — unreadable, unparseable, or mis-shaped spec file
    - [T021] (error) — unknown generator family
    - [T022] (error) — non-positive or too-small size parameters
      (Waxman [nodes < 2]; hierarchical [cores < 3], [pops_per_core < 1],
      [access_per_pop < 0])
    - [T023] (error) — Waxman [alpha] outside [(0, 1]]
    - [T024] (error) — Waxman [beta] outside [(0, 1]]
    - [T025] (warning) — Waxman parameters give an expected degree below
      2: the graph would be mostly stitching, not a Waxman topology

    The spec shape is one JSON object:
    [{"family": "waxman", "nodes": n, "alpha": a, "beta": b}] or
    [{"family": "hierarchical", "cores": c, "pops_per_core": p,
    "access_per_pop": a}]. *)

val lint : ?file:string -> Generators.spec -> Diagnostic.t list
(** Validate an in-memory spec (T022–T025). *)

val check_file : string -> Diagnostic.t list * Generators.spec option
(** Parse and {!lint} a spec file.  The spec is returned only when it
    carries no error-severity diagnostic. *)

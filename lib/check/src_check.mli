open! Import

(** L0xx — source lint for the Domain-parallel SPF path.

    [Spf_engine] fans per-source Dijkstra computations out over OCaml 5
    domains and promises bit-identical parallel and sequential results
    (DESIGN.md §6).  That proof rests on two properties no type checker
    enforces: the hot path reads only frozen data, and nothing in it
    consults ambient nondeterminism.  This pass scans the {e source
    tree} (plain text, no ppx) for the constructs that break them:

    - [L001] (error) — [Random.self_init] anywhere under the root:
      seeds must be explicit ({!Routing_stats.Rng}) or runs stop being
      reproducible
    - [L002] (error) — [Unix.gettimeofday] or [Sys.time] outside the
      span clock ([lib/obs/span.ml]): wall-clock reads belong behind
      the pluggable {!Routing_obs.Span} clock
    - [L003] (error) — top-level mutable state ([ref], [Hashtbl.create],
      [Queue.create], [Buffer.create], [Atomic.make] in a toplevel
      [let]) in a library reachable from [routing_spf]'s dune
      dependency closure — shared cells domains could race on

    The dependency closure is computed from the [dune] files under the
    root, so a new library that links into the SPF path is linted
    automatically.  Data races the lint cannot see are the tsan build
    profile's job (DESIGN.md §8). *)

val spf_reachable : root:string -> string list
(** Directories (relative to [root]) of the libraries in
    [routing_spf]'s dependency closure, itself included — parsed from
    the [dune] files.  Exposed for tests and for the CLI's verbose
    output. *)

val scan_file : in_spf_closure:bool -> string -> Diagnostic.t list
(** Lint one file; [in_spf_closure] arms the [L003] scan.  Comments and
    string literals are blanked first, so naming a banned construct in
    documentation does not trip the lint. *)

val check_tree : root:string -> Diagnostic.t list
(** Lint every [.ml]/[.mli] file under [root] (recursively; [_build]
    skipped).  [L003] only fires inside {!spf_reachable} directories. *)

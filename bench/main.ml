(* Experiment harness: regenerates every table and figure of the paper's
   evaluation, printing paper-reported values (where the paper gives them)
   next to what this reproduction measures.  See DESIGN.md §4 for the
   experiment index and EXPERIMENTS.md for recorded outcomes.

     dune exec bench/main.exe             # all experiments
     dune exec bench/main.exe -- fig10 table1
     dune exec bench/main.exe -- perf     # bechamel micro-benchmarks
*)

open Routing_topology
module Flow_sim = Routing_sim.Flow_sim
module Network = Routing_sim.Network
module Measure = Routing_sim.Measure
module Metric = Routing_metric.Metric
module Units = Routing_metric.Units
module Hnm = Routing_metric.Hnm
module Dspf = Routing_metric.Dspf
module Metric_map = Routing_equilibrium.Metric_map
module Response_map = Routing_equilibrium.Response_map
module Fixed_point = Routing_equilibrium.Fixed_point
module Cobweb = Routing_equilibrium.Cobweb
module Rng = Routing_stats.Rng
module Table = Routing_stats.Table

let section title =
  let rule = String.make 78 '=' in
  Format.printf "@.%s@.%s@.%s@." rule title rule

let note fmt = Format.printf fmt

(* Shared fixtures. *)
let arpanet = lazy (Arpanet.topology ())

let peak_tm = lazy (Arpanet.peak_traffic (Rng.create 7) (Lazy.force arpanet))

let response_map =
  lazy (Response_map.compute (Lazy.force arpanet) (Lazy.force peak_tm))

let probe () = Arpanet.representative_link (Lazy.force arpanet)

let two_region_tm g =
  let tm = Traffic_matrix.create ~nodes:(Graph.node_count g) in
  Graph.iter_nodes g (fun src ->
      Graph.iter_nodes g (fun dst ->
          let sn = Graph.node_name g src and dn = Graph.node_name g dst in
          if sn.[0] = 'L' && dn.[0] = 'R' then
            Traffic_matrix.set tm ~src ~dst 1300.));
  tm

(* ------------------------------------------------------------------ *)
(* Fig 1 / §3.3: routing oscillations between two inter-region links.  *)

let fig1 () =
  section
    "Fig 1 — routing oscillations: two regions joined by links A and B";
  let g, (a, b) = Generators.two_region () in
  let tm = two_region_tm g in
  note
    "offered inter-region load: %.1f kb/s over two 56 kb/s bridges (%.0f%%)@."
    (Traffic_matrix.total_bps tm /. 1000.)
    (Traffic_matrix.total_bps tm /. 1120.);
  let t =
    Table.create
      [ ("period", Table.Right); ("D-SPF A", Table.Right);
        ("D-SPF B", Table.Right); ("HN-SPF A", Table.Right);
        ("HN-SPF B", Table.Right) ]
  in
  let dsim = Flow_sim.create g Metric.D_spf tm in
  let hsim = Flow_sim.create g Metric.Hn_spf tm in
  for period = 1 to 16 do
    ignore (Flow_sim.step dsim);
    ignore (Flow_sim.step hsim);
    Table.add_row t
      [ string_of_int period;
        Printf.sprintf "%.2f" (Flow_sim.link_utilization dsim a);
        Printf.sprintf "%.2f" (Flow_sim.link_utilization dsim b);
        Printf.sprintf "%.2f" (Flow_sim.link_utilization hsim a);
        Printf.sprintf "%.2f" (Flow_sim.link_utilization hsim b) ]
  done;
  print_string (Table.to_string t);
  note
    "paper: with D-SPF \"links A and B alternating (instead of cooperating)@.\
     as traffic carriers\" — only 50%% of inter-region bandwidth usable.@.\
     measured: D-SPF flips the full load every 10 s period; HN-SPF settles@.\
     into stable sharing within ~3 periods.@."

(* ------------------------------------------------------------------ *)
(* Fig 4: normalized metric comparison for a 56 kb/s line.             *)

let line_of lt =
  let b = Builder.create () in
  let _ = Builder.trunk b lt "A" "B" in
  let g = Builder.build b in
  Graph.link g (Link.id_of_int 0)

let fig4 () =
  section "Fig 4 — comparison of metrics (normalized) for a 56 kb/s line";
  let t56 = line_of Line_type.T56 and s56 = line_of Line_type.S56 in
  let t =
    Table.create
      [ ("utilization", Table.Right); ("D-SPF terr", Table.Right);
        ("HN-SPF terr", Table.Right); ("HN-SPF sat", Table.Right) ]
  in
  List.iter
    (fun u ->
      let hops kind l = Metric_map.cost_in_hops kind l ~utilization:u in
      Table.add_row t
        [ Printf.sprintf "%.2f" u;
          Printf.sprintf "%.2f" (hops Metric.D_spf t56);
          Printf.sprintf "%.2f" (hops Metric.Hn_spf t56);
          Printf.sprintf "%.2f" (hops Metric.Hn_spf s56) ])
    [ 0.; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 0.95; 0.99 ];
  print_string (Table.to_string t);
  let curve kind l =
    Array.to_list (Metric_map.normalized kind l ~samples:40)
  in
  print_string
    (Routing_stats.Ascii_plot.render ~height:14
       ~x_label:"utilization" ~y_label:"relative cost (hops, clipped at 6)"
       [ { Routing_stats.Ascii_plot.label = "D-SPF terrestrial"; glyph = 'd';
           points =
             List.map (fun (u, h) -> (u, Float.min 6. h)) (curve Metric.D_spf t56) };
         { Routing_stats.Ascii_plot.label = "HN-SPF terrestrial"; glyph = 'h';
           points = curve Metric.Hn_spf t56 };
         { Routing_stats.Ascii_plot.label = "HN-SPF satellite"; glyph = 's';
           points =
             List.map
               (fun (u, h) ->
                 (* plot satellite relative to the terrestrial idle cost so
                    its higher floor is visible, as in the paper's figure *)
                 ( u,
                   h
                   *. float_of_int (Metric_map.idle_cost Metric.Hn_spf s56)
                   /. float_of_int (Metric_map.idle_cost Metric.Hn_spf t56) ))
               (curve Metric.Hn_spf s56) } ]);
  note
    "paper: D-SPF \"much steeper ... at high utilization levels\"; HN-SPF@.\
     constant until 50%% utilization, then linear to 3 hops (min 30, max@.\
     90 units); satellite starts higher, equal when highly utilized.@.\
     measured: all three properties hold (columns are in hops = cost/idle).@."

(* ------------------------------------------------------------------ *)
(* Fig 5: absolute bounds for four line types.                         *)

let fig5 () =
  section "Fig 5 — absolute bounds: HN-SPF cost in routing units";
  let lines =
    [ ("9.6 sat", line_of Line_type.S9_6); ("9.6 terr", line_of Line_type.T9_6);
      ("56 sat", line_of Line_type.S56); ("56 terr", line_of Line_type.T56) ]
  in
  let t =
    Table.create
      (("utilization", Table.Right)
      :: List.map (fun (name, _) -> (name, Table.Right)) lines)
  in
  List.iter
    (fun u ->
      Table.add_row t
        (Printf.sprintf "%.2f" u
        :: List.map
             (fun (_, l) ->
               string_of_int (Metric.equilibrium_cost Metric.Hn_spf l ~utilization:u))
             lines))
    [ 0.; 0.25; 0.5; 0.6; 0.7; 0.8; 0.9; 0.99 ];
  print_string (Table.to_string t);
  let full96 =
    Metric.equilibrium_cost Metric.Hn_spf (line_of Line_type.T9_6) ~utilization:1.
  in
  let idle56 =
    Metric.equilibrium_cost Metric.Hn_spf (line_of Line_type.T56) ~utilization:0.
  in
  note
    "paper: a fully utilized 9.6 kb/s line reports ~7x an idle 56 kb/s line@.\
     (vs ~127x under the delay metric); idle 56 sat < idle 9.6 terr.@.\
     measured: %d / %d = %.1fx.@."
    full96 idle56
    (float_of_int full96 /. float_of_int idle56)

(* ------------------------------------------------------------------ *)
(* Fig 7: reported cost needed to shed routes, by route length.        *)

let fig7 () =
  section "Fig 7 — reported cost (hops) needed to shed routes";
  let stats =
    Response_map.shed_statistics (Lazy.force arpanet) (Lazy.force peak_tm)
  in
  let t =
    Table.create
      [ ("route length", Table.Right); ("routes", Table.Right);
        ("mean", Table.Right); ("stddev", Table.Right); ("min", Table.Right);
        ("max", Table.Right) ]
  in
  List.iter
    (fun s ->
      Table.add_row t
        [ string_of_int s.Response_map.route_hops;
          string_of_int s.Response_map.routes;
          Printf.sprintf "%.2f" s.Response_map.mean_shed_hops;
          Printf.sprintf "%.2f" s.Response_map.stddev_shed_hops;
          Printf.sprintf "%.0f" s.Response_map.min_shed_hops;
          Printf.sprintf "%.0f" s.Response_map.max_shed_hops ])
    stats;
  print_string (Table.to_string t);
  (match stats with
  | one_hop :: _ ->
    note
      "paper: 1-hop routes shed at 4 hops on average, 8 max; long routes@.\
       have alternates only slightly longer.  measured: 1-hop mean %.1f,@.\
       max %.0f, declining with route length as in the paper.@."
      one_hop.Response_map.mean_shed_hops one_hop.Response_map.max_shed_hops
  | [] -> ());
  (* "The characteristics of individual links differ from the 'average'
     link": the same statistic restricted to link classes. *)
  let class_mean name pred =
    let stats =
      Response_map.shed_statistics ~links:pred (Lazy.force arpanet)
        (Lazy.force peak_tm)
    in
    let n = List.fold_left (fun acc s -> acc + s.Response_map.routes) 0 stats in
    let sum =
      List.fold_left
        (fun acc s ->
          acc +. (s.Response_map.mean_shed_hops *. float_of_int s.Response_map.routes))
        0. stats
    in
    if n > 0 then
      note "  %-28s %6d routes, mean shed %.2f hops@." name n
        (sum /. float_of_int n)
  in
  note "@.per link class (mean over that class's routes):@.";
  let bridges = Arpanet.bridge_links (Lazy.force arpanet) in
  class_mean "cross-country trunks:" (fun l ->
      List.exists (fun (b : Link.t) -> Link.id_equal b.Link.id l.Link.id) bridges);
  class_mean "satellite trunks:" (fun (l : Link.t) ->
      Line_type.is_satellite l.Link.line_type);
  class_mean "9.6 kb/s tails:" (fun (l : Link.t) ->
      Line_type.bandwidth_bps l.Link.line_type <= 9_600.);
  class_mean "56 kb/s terrestrial mesh:" (fun (l : Link.t) ->
      (not (Line_type.is_satellite l.Link.line_type))
      && Line_type.bandwidth_bps l.Link.line_type > 9_600.)

(* ------------------------------------------------------------------ *)
(* Fig 8: the Network Response Map.                                    *)

let fig8 () =
  section "Fig 8 — overall network response to reported cost";
  let rm = Lazy.force response_map in
  let t =
    Table.create
      [ ("reported cost (hops)", Table.Right);
        ("normalized traffic", Table.Right) ]
  in
  Array.iter
    (fun (x, y) ->
      Table.add_row t [ Printf.sprintf "%.1f" x; Printf.sprintf "%.2f" y ])
    (Response_map.points rm);
  print_string (Table.to_string t);
  print_string
    (Routing_stats.Ascii_plot.render ~height:12 ~x_label:"reported cost (hops)"
       ~y_label:"normalized traffic"
       [ { Routing_stats.Ascii_plot.label = "average link"; glyph = '*';
           points = Array.to_list (Response_map.points rm) } ]);
  let captive =
    Routing_topology.Graph_analysis.captive_traffic_fraction
      (Lazy.force arpanet) (Lazy.force peak_tm)
  in
  note
    "paper: sharp fall between 0.5 and 1.5 hops (the epsilon problem); a@.\
     link reporting 4 sheds over 90%% of base traffic.  measured: %.2f ->@.\
     %.2f across one hop; %.0f%% shed at cost 4.  The %.2f floor is@.\
     captive traffic: %.0f%% of the matrix crosses a bridge trunk and can@.\
     never be shed at any cost.@."
    (Response_map.traffic_at rm 0.5)
    (Response_map.traffic_at rm 1.5)
    (100. *. (1. -. Response_map.traffic_at rm 4.))
    (Response_map.traffic_at rm 9.5)
    (100. *. captive)

(* ------------------------------------------------------------------ *)
(* Fig 9: equilibrium calculation (metric map x response map).         *)

let fig9 () =
  section "Fig 9 — equilibrium calculation for a 56 kb/s link";
  let rm = Lazy.force response_map in
  let t =
    Table.create
      [ ("offered load", Table.Right); ("D-SPF cost (hops)", Table.Right);
        ("D-SPF util", Table.Right); ("HN-SPF cost (hops)", Table.Right);
        ("HN-SPF util", Table.Right) ]
  in
  List.iter
    (fun load ->
      let d = Fixed_point.equilibrium Metric.D_spf (probe ()) rm ~offered_load:load in
      let h = Fixed_point.equilibrium Metric.Hn_spf (probe ()) rm ~offered_load:load in
      Table.add_row t
        [ Printf.sprintf "%.0f%%" (100. *. load);
          Printf.sprintf "%.2f" d.Fixed_point.cost_hops;
          Printf.sprintf "%.2f" d.Fixed_point.utilization;
          Printf.sprintf "%.2f" h.Fixed_point.cost_hops;
          Printf.sprintf "%.2f" h.Fixed_point.utilization ])
    [ 0.5; 0.75; 1.0; 1.5; 2.0 ];
  print_string (Table.to_string t);
  note
    "paper: the equilibrium moves with offered load; HN-SPF's equilibrium@.\
     keeps more traffic on the link than D-SPF's.  measured: above, solved@.\
     by bisection on cost = M(load * n(cost)) as in §5.3.@."

(* ------------------------------------------------------------------ *)
(* Fig 10: equilibrium utilization vs offered load.                    *)

let fig10 () =
  section "Fig 10 — equilibrium traffic for a heavily utilized line";
  let rm = Lazy.force response_map in
  let t =
    Table.create
      [ ("min-hop offered load", Table.Right); ("ideal", Table.Right);
        ("min-hop", Table.Right); ("HN-SPF", Table.Right);
        ("D-SPF", Table.Right) ]
  in
  List.iter
    (fun load ->
      let carried kind =
        (Fixed_point.equilibrium kind (probe ()) rm ~offered_load:load)
          .Fixed_point.carried
      in
      Table.add_row t
        [ Printf.sprintf "%.2f" load;
          Printf.sprintf "%.2f" (Fixed_point.ideal_carried load);
          Printf.sprintf "%.2f" (carried Metric.Min_hop);
          Printf.sprintf "%.2f" (carried Metric.Hn_spf);
          Printf.sprintf "%.2f" (carried Metric.D_spf) ])
    [ 0.1; 0.25; 0.5; 0.75; 1.0; 1.25; 1.5; 2.0; 2.5; 3.0; 3.5; 4.0 ];
  print_string (Table.to_string t);
  let loads = List.init 40 (fun i -> 0.1 +. (float_of_int i *. 0.1)) in
  let curve kind =
    List.map
      (fun load ->
        ( load,
          (Fixed_point.equilibrium kind (probe ()) rm ~offered_load:load)
            .Fixed_point.carried ))
      loads
  in
  print_string
    (Routing_stats.Ascii_plot.render ~height:12
       ~x_label:"min-hop offered load" ~y_label:"equilibrium utilization"
       [ { Routing_stats.Ascii_plot.label = "min-hop"; glyph = 'm';
           points = curve Metric.Min_hop };
         { Routing_stats.Ascii_plot.label = "HN-SPF"; glyph = 'h';
           points = curve Metric.Hn_spf };
         { Routing_stats.Ascii_plot.label = "D-SPF"; glyph = 'd';
           points = curve Metric.D_spf } ]);
  note
    "paper: HN-SPF lies between min-hop and D-SPF — \"it acts like min-hop@.\
     until the link utilization exceeds 50%% and then starts shedding@.\
     traffic, but still maintains higher link utilizations than D-SPF\".@.\
     measured: ordering holds at every load above.@."

(* ------------------------------------------------------------------ *)
(* Figs 11 & 12: dynamic behaviour (cobweb traces).                    *)

let trace_table title traces =
  let t =
    Table.create ~title
      (("period", Table.Right)
      :: List.concat_map
           (fun (name, _) ->
             [ (name ^ " cost(h)", Table.Right); (name ^ " util", Table.Right) ])
           traces)
  in
  let periods = List.length (snd (List.hd traces)) in
  for i = 0 to periods - 1 do
    Table.add_row t
      (string_of_int i
      :: List.concat_map
           (fun (_, tr) ->
             let p = List.nth tr i in
             [ Printf.sprintf "%.1f" p.Cobweb.cost_hops;
               Printf.sprintf "%.2f" p.Cobweb.utilization ])
           traces)
  done;
  print_string (Table.to_string t)

let fig11 () =
  section "Fig 11 — dynamic behaviour of D-SPF at 100% offered load";
  let rm = Lazy.force response_map in
  let tr start =
    Cobweb.trace Metric.D_spf (probe ()) rm ~offered_load:1.0 ~start ~periods:14
  in
  trace_table "D-SPF cobweb iteration"
    [ ("from idle", tr Cobweb.From_idle); ("from max", tr Cobweb.From_max) ];
  print_string
    (Routing_stats.Ascii_plot.render ~height:12 ~x_label:"routing period"
       ~y_label:"reported cost (hops)"
       [ { Routing_stats.Ascii_plot.label = "D-SPF cost"; glyph = 'd';
           points =
             List.map
               (fun p -> (float_of_int p.Cobweb.period, p.Cobweb.cost_hops))
               (tr Cobweb.From_idle) } ]);
  let amplitude = Cobweb.tail_amplitude (tr Cobweb.From_idle) ~last:8 in
  note
    "paper: \"for heavy offered loads D-SPF is unstable and will oscillate@.\
     between being oversubscribed and idle\"; the equilibrium is only@.\
     meta-stable.  measured: tail amplitude %.1f hops — the full swing@.\
     between the bias floor and the congested ceiling, every period.@."
    amplitude

let fig12 () =
  section "Fig 12 — dynamic behaviour of HN-SPF at 100% offered load";
  let rm = Lazy.force response_map in
  let tr start =
    Cobweb.trace Metric.Hn_spf (probe ()) rm ~offered_load:1.0 ~start ~periods:14
  in
  let from_idle = tr Cobweb.From_idle in
  let easing = tr Cobweb.From_max in
  trace_table "HN-SPF cobweb iteration"
    [ ("from idle", from_idle); ("easing in", easing) ];
  let as_points trace =
    List.map (fun p -> (float_of_int p.Cobweb.period, p.Cobweb.cost_hops)) trace
  in
  print_string
    (Routing_stats.Ascii_plot.render ~height:12 ~x_label:"routing period"
       ~y_label:"reported cost (hops)"
       [ { Routing_stats.Ascii_plot.label = "from idle"; glyph = 'h';
           points = as_points from_idle };
         { Routing_stats.Ascii_plot.label = "easing in (new link)"; glyph = 'e';
           points = as_points easing } ]);
  note
    "paper: HN-SPF converges, oscillating around the equilibrium with an@.\
     amplitude bounded by the half-hop movement limit; a new link starts@.\
     at its maximum cost and is eased in.  measured: tail amplitude %.2f@.\
     hops (bound %.2f); easing-in walks down from 3.0 hops and settles.@."
    (Cobweb.tail_amplitude from_idle ~last:8)
    (16. /. 30.)

(* ------------------------------------------------------------------ *)
(* Table 1: network-wide performance indicators, before vs after.      *)

let table1 () =
  section "Table 1 — ARPANET network-wide performance indicators";
  let g = Lazy.force arpanet in
  let tm = Lazy.force peak_tm in
  let run kind scale =
    let sim = Flow_sim.create g kind (Traffic_matrix.scale tm scale) in
    ignore (Flow_sim.run sim ~periods:210);
    Flow_sim.indicators sim ~skip:30 ()
  in
  let run_adaptive kind scale =
    let sim = Flow_sim.create g kind (Traffic_matrix.scale tm scale) in
    Flow_sim.set_adaptive_sources sim true;
    ignore (Flow_sim.run sim ~periods:210);
    Flow_sim.indicators sim ~skip:30 ()
  in
  (* May 87 = D-SPF at 1.0x; Aug 87 = HN-SPF at 1.13x (+13% traffic). *)
  let may = run Metric.D_spf 1.0 in
  let aug = run Metric.Hn_spf 1.13 in
  let may_a = run_adaptive Metric.D_spf 1.0 in
  let aug_a = run_adaptive Metric.Hn_spf 1.13 in
  print_string
    (Table.to_string
       (Measure.comparison_table
          ~title:
            "measured (flow simulator, 30 min after 5 min warm-up; 'adapt' = \
             sources back off under loss, as 1987 hosts did)"
          [ ("May (D-SPF)", may); ("Aug (HN-SPF)", aug);
            ("May adapt", may_a); ("Aug adapt", aug_a) ]));
  let paper =
    Table.create ~title:"paper (Table 1)"
      [ ("Indicator", Table.Left); ("May 87", Table.Right);
        ("Aug 87", Table.Right) ]
  in
  List.iter
    (fun (label, a, b) -> Table.add_row paper [ label; a; b ])
    [ ("Internode Traffic (kb/s)", "366.26", "413.99");
      ("Round Trip Delay (ms)", "635.45", "338.59");
      ("Rtng. Updates per Net/s", "2.04", "1.74");
      ("Update Period per Node (s)", "22.06", "26.32");
      ("Internode Actual Path (hops)", "4.91", "3.70");
      ("Internode Minimum Path (hops)", "3.97", "3.24");
      ("Path Ratio (Actual/Min.)", "1.24", "1.14") ];
  print_string (Table.to_string paper);
  note
    "shape check: delay falls %.0f%% (paper: 46%%) despite +13%% offered@.\
     traffic; updates fall %.0f%% (paper: 19%%); path ratio improves@.\
     %.2f -> %.2f (paper: 1.24 -> 1.14).  Our D-SPF run degrades harder@.\
     than the 1987 ARPANET because the simulator offers the full matrix@.\
     relentlessly; directions and relative magnitudes match.@."
    (100. *. (1. -. (aug.Measure.round_trip_delay_ms /. may.Measure.round_trip_delay_ms)))
    (100. *. (1. -. (aug.Measure.updates_per_s /. may.Measure.updates_per_s)))
    may.Measure.path_ratio aug.Measure.path_ratio

(* ------------------------------------------------------------------ *)
(* Table 1 at packet level: the DES cross-check (not in the default     *)
(* sweep; run as `bench/main.exe table1p`).                             *)

let table1p () =
  section "table1p — Table 1 re-measured by the packet-level DES";
  let g = Lazy.force arpanet in
  let tm = Lazy.force peak_tm in
  let run kind scale =
    let config =
      { (Network.default_config kind) with
        Network.seed = 7;
        record_series = false }
    in
    let net = Network.create ~config g (Traffic_matrix.scale tm scale) in
    Network.run net ~duration_s:300.;
    Network.reset_measurements net;
    Network.run net ~duration_s:900.;
    net
  in
  let may = run Metric.D_spf 1.0 in
  let aug = run Metric.Hn_spf 1.13 in
  print_string
    (Table.to_string
       (Measure.comparison_table
          ~title:"measured (packet DES, 15 min after 5 min warm-up)"
          [ ("May 87 (D-SPF)", may |> Network.indicators);
            ("Aug 87 (HN-SPF)", aug |> Network.indicators) ]));
  let aug_i = Network.indicators aug and may_i = Network.indicators may in
  note
    ("Every packet individually generated, queued, measured and forwarded@."
    ^^ " (finite 40-packet buffers, real 10 s measurement windows, real@."
    ^^ " flooding).  Direction matches the flow simulator's Table 1: delay@."
    ^^ " %.0f%% lower under HN-SPF at +13%% traffic, drops %.1fx lower.@."
    ^^ " Delay percentiles (one-way): D-SPF p50 %.0f / p95 %.0f ms;@."
    ^^ " HN-SPF p50 %.0f / p95 %.0f ms.@.")
    (100. *. (1. -. (aug_i.Measure.round_trip_delay_ms /. may_i.Measure.round_trip_delay_ms)))
    (may_i.Measure.dropped_per_s /. Float.max 0.01 aug_i.Measure.dropped_per_s)
    (Network.median_delay_ms may) (Network.p95_delay_ms may)
    (Network.median_delay_ms aug) (Network.p95_delay_ms aug)

(* ------------------------------------------------------------------ *)
(* Fig 13: dropped packets per day, before/after the HNM install.      *)

let fig13 () =
  section "Fig 13 — dropped packets per weekday around the HNM install";
  let g = Lazy.force arpanet in
  let tm = Lazy.force peak_tm in
  let days = 70 in
  let install_day = 35 in
  let periods_per_day = 30 (* 5 simulated minutes of peak hour per day *) in
  let sim = Flow_sim.create g Metric.D_spf tm in
  let t =
    Table.create
      [ ("day", Table.Right); ("metric", Table.Left);
        ("traffic scale", Table.Right); ("dropped pkt/s", Table.Right);
        ("delivered kb/s", Table.Right) ]
  in
  for day = 1 to days do
    (* Traffic grows ~0.35% per weekday: +13% over the 35 pre-install
       days, continuing afterwards ("despite ever-increasing traffic"). *)
    let scale = 1.0 +. (0.0037 *. float_of_int (day - 1)) in
    Flow_sim.set_traffic sim (Traffic_matrix.scale tm scale);
    if day = install_day then Flow_sim.switch_metric sim Metric.Hn_spf;
    let day_stats = Flow_sim.run sim ~periods:periods_per_day in
    let dropped =
      List.fold_left (fun acc s -> acc +. s.Flow_sim.dropped_bps) 0. day_stats
      /. float_of_int periods_per_day /. 600.
    in
    let delivered =
      List.fold_left (fun acc s -> acc +. s.Flow_sim.delivered_bps) 0. day_stats
      /. float_of_int periods_per_day /. 1000.
    in
    if day mod 5 = 0 || day = 1 || day = install_day || day = install_day - 1
    then
      Table.add_row t
        [ string_of_int day;
          (if day >= install_day then "HN-SPF" else "D-SPF");
          Printf.sprintf "%.3f" scale;
          Printf.sprintf "%.1f" dropped;
          Printf.sprintf "%.1f" delivered ]
  done;
  print_string (Table.to_string t);
  note
    "paper: \"sharp drop in the number of dropped packets after the@.\
     deployment of the patch ... despite ever-increasing traffic levels\".@.\
     measured: the install-day discontinuity above.@."

(* ------------------------------------------------------------------ *)
(* Ablations of the HNM's design choices (ours; §4.3's mechanisms       *)
(* switched off one at a time).                                         *)

module Hnm_m = Routing_metric.Hnm
module Hnm_params = Routing_metric.Hnm_params

let ablate () =
  section "ablate — what each HNM mechanism buys (ours, beyond the paper)";
  let g, (a, b) = Generators.two_region () in
  (* Harsher than Fig 1: 103% of the combined bridge capacity, where the
     equilibrium sits on the steep part of the response map. *)
  let tm = Traffic_matrix.scale (two_region_tm g) 1.38 in
  let wide_bounds_params lt =
    (* Relax the "at most two additional hops" judgment call (§4.4) to
       seven additional hops: same flat-then-linear shape, 8x ceiling. *)
    let p = Hnm_params.for_line_type lt in
    let base = p.Hnm_params.base_min in
    { p with
      Hnm_params.max_cost = 8 * base;
      slope = float_of_int (14 * base);
      offset = float_of_int (-6 * base) }
  in
  let variants =
    [ ("full HNM", fun lt -> Hnm_m.default_config lt);
      ( "no averaging",
        fun lt -> { (Hnm_m.default_config lt) with Hnm_m.averaging = false } );
      ( "no movement limits",
        fun lt ->
          { (Hnm_m.default_config lt) with Hnm_m.movement_limits = false } );
      ( "symmetric limits (no march-up)",
        fun lt -> { (Hnm_m.default_config lt) with Hnm_m.march_up = false } );
      ( "wide bounds (max 8x min)",
        fun lt ->
          { (Hnm_m.default_config lt) with Hnm_m.params = wide_bounds_params lt }
      );
      ( "no averaging + no limits",
        fun lt ->
          { (Hnm_m.default_config lt) with
            Hnm_m.averaging = false;
            movement_limits = false } );
      ( "wide bounds + no limits",
        fun lt ->
          { (Hnm_m.default_config lt) with
            Hnm_m.params = wide_bounds_params lt;
            movement_limits = false } ) ]
  in
  let t =
    Table.create
      [ ("variant", Table.Left); ("delivered kb/s", Table.Right);
        ("flap (mean |dU|)", Table.Right); ("routes moved/period", Table.Right);
        ("updates/s", Table.Right); ("rtt ms", Table.Right) ]
  in
  let dspf_row =
    let sim = Flow_sim.create g Metric.D_spf tm in
    ignore (Flow_sim.run sim ~periods:40);
    sim
  in
  let measure sim =
    (* Oscillation amplitude: mean per-period swing of bridge A's
       utilization over the tail. *)
    ignore b;
    let utils = ref [] in
    for _ = 1 to 20 do
      ignore (Flow_sim.step sim);
      utils := Flow_sim.link_utilization sim a :: !utils
    done;
    let rec swings = function
      | x :: (y :: _ as rest) -> Float.abs (x -. y) :: swings rest
      | _ -> []
    in
    let s = swings !utils in
    let flap = List.fold_left ( +. ) 0. s /. float_of_int (List.length s) in
    let i = Flow_sim.indicators sim ~skip:30 () in
    let tail = List.filteri (fun k _ -> k >= 40) (Flow_sim.history sim) in
    let moved =
      List.fold_left (fun acc st -> acc + st.Flow_sim.routes_changed) 0 tail
    in
    ( i.Measure.internode_traffic_bps /. 1000.,
      flap,
      float_of_int moved /. float_of_int (List.length tail),
      i.Measure.updates_per_s,
      i.Measure.round_trip_delay_ms )
  in
  List.iter
    (fun (name, config) ->
      let metric =
        Metric.create_custom_hnspf
          (fun (l : Link.t) -> config l.Link.line_type)
          g
      in
      let sim = Flow_sim.create_with g metric tm in
      ignore (Flow_sim.run sim ~periods:40);
      let delivered, flap, moved, upd, rtt = measure sim in
      ignore (Table.add_float_row t name [ delivered; flap; moved; upd; rtt ]))
    variants;
  let delivered, flap, moved, upd, rtt = measure dspf_row in
  ignore
    (Table.add_float_row t "(D-SPF reference)" [ delivered; flap; moved; upd; rtt ]);
  print_string (Table.to_string t);
  note
    "Two-region scenario at 103%% of the combined bridge capacity.  'flap'@.\
     is the mean per-period swing of bridge A's utilization: 0 = settled,@.\
     ~2 = the full stampede.  Reading the ladder: the absolute clip@.\
     (max 2 extra hops) is the strongest single stabilizer — widening it@.\
     alone brings back oscillation; removing the movement limits on top@.\
     reproduces the D-SPF meltdown almost exactly.  With the clip in@.\
     place, averaging, movement limits and the march-up are individually@.\
     redundant here: the HNM is defense in depth.@."

(* ------------------------------------------------------------------ *)
(* Three generations of ARPANET routing (ours, from §2's history).      *)

module Bf_sim = Routing_bellman.Bellman_sim

let gen3 () =
  section "gen3 — 1969 Bellman-Ford vs 1979 D-SPF vs 1987 HN-SPF (ours)";
  let rng = Rng.create 31 in
  let g = Generators.ring_chord rng ~nodes:16 ~chords:10 in
  let tm =
    Traffic_matrix.gravity (Rng.create 32) ~nodes:(Graph.node_count g)
      ~total_bps:250_000.
  in
  let tm = Traffic_matrix.scale tm 1.9 in
  note "16-node mesh, %.0f kb/s offered (heavy).@."
    (Traffic_matrix.total_bps tm /. 1000.);
  let t =
    Table.create
      [ ("generation", Table.Left); ("delivered kb/s", Table.Right);
        ("rtt ms", Table.Right); ("loop pairs/period", Table.Right) ]
  in
  (* 1969: distributed Bellman-Ford, instantaneous queue metric. *)
  let bf = Bf_sim.create ~seed:5 g tm in
  let bf_stats = List.filteri (fun i _ -> i >= 5) (Bf_sim.run bf ~periods:25) in
  let bf_n = float_of_int (List.length bf_stats) in
  ignore
    (Table.add_float_row t "1969 Bellman-Ford (queue len)"
       [ List.fold_left (fun acc s -> acc +. s.Bf_sim.delivered_bps) 0. bf_stats
         /. bf_n /. 1000.;
         2000.
         *. List.fold_left (fun acc s -> acc +. s.Bf_sim.mean_delay_s) 0. bf_stats
         /. bf_n;
         List.fold_left
           (fun acc s -> acc +. float_of_int s.Bf_sim.looping_pairs)
           0. bf_stats
         /. bf_n ]);
  (* 1979 and 1987: the SPF generations. *)
  List.iter
    (fun (name, kind) ->
      let sim = Flow_sim.create g kind tm in
      ignore (Flow_sim.run sim ~periods:25);
      let i = Flow_sim.indicators sim ~skip:5 () in
      ignore
        (Table.add_float_row t name
           [ i.Measure.internode_traffic_bps /. 1000.;
             i.Measure.round_trip_delay_ms;
             0. (* consistent SPF tables cannot loop *) ]))
    [ ("1979 D-SPF (measured delay)", Metric.D_spf);
      ("1987 HN-SPF (the revision)", Metric.Hn_spf) ];
  print_string (Table.to_string t);
  note
    "The §2 story end to end: Bellman-Ford loops under its volatile@.\
     instantaneous metric; D-SPF is loop-free but oscillates away@.\
     bandwidth; HN-SPF keeps the loop-freedom and the bandwidth.@."

(* ------------------------------------------------------------------ *)
(* Scaling: the metric is "applicable to any network" (§1).             *)

let scaling () =
  section "scaling — HN-SPF stability across network sizes (ours)";
  let t =
    Table.create
      [ ("nodes", Table.Right); ("trunks", Table.Right);
        ("delivered/offered", Table.Right); ("max util", Table.Right);
        ("updates/s", Table.Right); ("ms/period (wall)", Table.Right) ]
  in
  List.iter
    (fun nodes ->
      let rng = Rng.create (1000 + nodes) in
      let g = Generators.ring_chord rng ~nodes ~chords:(nodes / 2) in
      let tm =
        Traffic_matrix.gravity (Rng.create (2000 + nodes)) ~nodes
          ~total_bps:(float_of_int nodes *. 12_000.)
      in
      let sim = Flow_sim.create g Metric.Hn_spf tm in
      let t0 = Unix.gettimeofday () in
      ignore (Flow_sim.run sim ~periods:40);
      let wall = (Unix.gettimeofday () -. t0) /. 40. *. 1000. in
      let i = Flow_sim.indicators sim ~skip:10 () in
      let tail = List.filteri (fun k _ -> k >= 30) (Flow_sim.history sim) in
      let max_util =
        List.fold_left (fun acc s -> Float.max acc s.Flow_sim.max_utilization)
          0. tail
      in
      Table.add_row t
        [ string_of_int nodes;
          string_of_int (Graph.link_count g / 2);
          Printf.sprintf "%.3f"
            (i.Measure.internode_traffic_bps /. Traffic_matrix.total_bps tm);
          Printf.sprintf "%.2f" max_util;
          Printf.sprintf "%.2f" i.Measure.updates_per_s;
          Printf.sprintf "%.2f" wall ])
    [ 16; 32; 64; 128; 256 ];
  print_string (Table.to_string t);
  note
    "Gravity traffic scaled with size.  Delivery stays high and the@.\
     control loop stays quiet as the network grows; wall-clock per period@.\
     grows roughly with nodes x links (the all-pairs SPF).@."

(* ------------------------------------------------------------------ *)
(* Multipath: the §4.5 extension.                                       *)

module Multipath_sim = Routing_multipath.Multipath_sim

let multipath () =
  section "multipath — ECMP extension for large flows (ours, from §4.5)";
  (* The paper's stated limit: one large flow between two parallel paths. *)
  let b = Builder.create () in
  let _ = Builder.trunk b Line_type.T56 "S" "A" in
  let _ = Builder.trunk b Line_type.T56 "A" "T" in
  let _ = Builder.trunk b Line_type.T56 "S" "B" in
  let _ = Builder.trunk b Line_type.T56 "B" "T" in
  let g = Builder.build b in
  let s = Option.get (Graph.node_by_name g "S") in
  let dst = Option.get (Graph.node_by_name g "T") in
  let t =
    Table.create
      [ ("flow size (kb/s)", Table.Right); ("single-path del.", Table.Right);
        ("ECMP del.", Table.Right); ("single rtt ms", Table.Right);
        ("ECMP rtt ms", Table.Right) ]
  in
  List.iter
    (fun kbps ->
      let tm = Traffic_matrix.create ~nodes:4 in
      Traffic_matrix.set tm ~src:s ~dst (kbps *. 1000.);
      let single = Flow_sim.create g Metric.Hn_spf tm in
      ignore (Flow_sim.run single ~periods:30);
      let si = Flow_sim.indicators single ~skip:10 () in
      let multi = Multipath_sim.create g Metric.Hn_spf tm in
      let mstats = List.filteri (fun i _ -> i >= 10) (Multipath_sim.run multi ~periods:30) in
      let mn = float_of_int (List.length mstats) in
      let m_del =
        List.fold_left (fun acc st -> acc +. st.Multipath_sim.delivered_bps) 0.
          mstats
        /. mn
      in
      let m_rtt =
        2000.
        *. List.fold_left (fun acc st -> acc +. st.Multipath_sim.mean_delay_s) 0.
             mstats
        /. mn
      in
      Table.add_row t
        [ Printf.sprintf "%.0f" kbps;
          Printf.sprintf "%.1f" (si.Measure.internode_traffic_bps /. 1000.);
          Printf.sprintf "%.1f" (m_del /. 1000.);
          Printf.sprintf "%.0f" si.Measure.round_trip_delay_ms;
          Printf.sprintf "%.0f" m_rtt ])
    [ 20.; 40.; 56.; 78.; 100. ];
  print_string (Table.to_string t);
  note
    "One indivisible S->T flow over two equal 2-hop paths.  Past one@.\
     link's capacity (56 kb/s), single-path HN-SPF limit-cycles and@.\
     saturates one path; ECMP splits the flow and carries up to twice@.\
     that — \"load-sharing when network traffic is dominated by several@.\
     large flows would require a multi-path routing algorithm\" (§4.5).@."

(* ------------------------------------------------------------------ *)
(* The MILNET deployment study (the paper's reference [2]).             *)

let milnet () =
  section "milnet — the MILNET deployment, Table-1 style (paper ref [2])";
  let g = Milnet.topology () in
  let tm = Milnet.peak_traffic (Rng.create 11) g in
  note "heterogeneous trunking: %a@." Graph.pp_summary g;
  let run kind scale =
    let sim = Flow_sim.create g kind (Traffic_matrix.scale tm scale) in
    ignore (Flow_sim.run sim ~periods:210);
    Flow_sim.indicators sim ~skip:30 ()
  in
  let before = run Metric.D_spf 1.0 in
  let after = run Metric.Hn_spf 1.1 in
  print_string
    (Table.to_string
       (Measure.comparison_table
          ~title:"measured (flow simulator; +10% traffic after the install)"
          [ ("before (D-SPF)", before); ("after (HN-SPF)", after) ]));
  note
    ("paper: \"it has been successfully deployed in several major networks,@."
    ^^ " including the MILNET\"; the detailed MILNET numbers are in BBN@."
    ^^ " Report 6719 (not public).  measured: the same qualitative wins as@."
    ^^ " Table 1 on a topology that exercises all eight line types - delay@."
    ^^ " %.0f%% lower, updates %.0f%% fewer, drops %.1fx lower.@.")
    (100. *. (1. -. (after.Measure.round_trip_delay_ms /. before.Measure.round_trip_delay_ms)))
    (100. *. (1. -. (after.Measure.updates_per_s /. before.Measure.updates_per_s)))
    (before.Measure.dropped_per_s /. Float.max 0.01 after.Measure.dropped_per_s)

(* ------------------------------------------------------------------ *)
(* Epilogue: the static inverse-capacity metric OSPF later adopted.     *)

let modern () =
  section "modern — epilogue: what OSPF later did (static capacity costs)";
  let g = Lazy.force arpanet in
  let tm = Lazy.force peak_tm in
  note "ARPANET topology, peak traffic swept from light to 1.4x.@.";
  let t =
    Table.create
      (("offered", Table.Left)
      :: List.concat_map
           (fun name -> [ (name ^ " del.", Table.Right); (name ^ " rtt", Table.Right) ])
           [ "min-hop"; "static-cap"; "HN-SPF" ])
  in
  List.iter
    (fun scale ->
      let cells =
        List.concat_map
          (fun kind ->
            let sim = Flow_sim.create g kind (Traffic_matrix.scale tm scale) in
            ignore (Flow_sim.run sim ~periods:40);
            let i = Flow_sim.indicators sim ~skip:10 () in
            [ Printf.sprintf "%.0f" (i.Measure.internode_traffic_bps /. 1000.);
              Printf.sprintf "%.0f" i.Measure.round_trip_delay_ms ])
          [ Metric.Min_hop; Metric.Static_capacity; Metric.Hn_spf ]
      in
      Table.add_row t (Printf.sprintf "%.2fx" scale :: cells))
    [ 0.5; 0.8; 1.0; 1.2; 1.4 ];
  print_string (Table.to_string t);
  note
    ("Static inverse-capacity costs (each link pinned at its HN-SPF idle@."
    ^^ " value - what OSPF reference-bandwidth costs later standardized)@."
    ^^ " improve on min-hop by steering around 9.6 kb/s tails, with zero@."
    ^^ " update traffic and zero oscillation risk; HN-SPF's adaptation@."
    ^^ " then buys the remaining delay and throughput at peak load, where@."
    ^^ " static routing oversubscribes its chosen paths.  History kept the@."
    ^^ " static half and moved the adaptation to end-to-end congestion@."
    ^^ " control - the combination the adaptive-sources experiment runs.@.")

(* ------------------------------------------------------------------ *)
(* Loop gain (§5: "changes both the equilibrium point and the gain").   *)

module Stability = Routing_equilibrium.Stability

let gain () =
  section "gain — control-theoretic loop gain at equilibrium (ours, from §5)";
  let rm = Lazy.force response_map in
  let t =
    Table.create
      [ ("offered load", Table.Right); ("D-SPF raw g", Table.Right);
        ("D-SPF |eig|", Table.Right); ("stable", Table.Left);
        ("HN-SPF raw g", Table.Right); ("HN-SPF |eig|", Table.Right);
        ("stable ", Table.Left) ]
  in
  List.iter
    (fun load ->
      let d = Stability.analyze Metric.D_spf (probe ()) rm ~offered_load:load in
      let h = Stability.analyze Metric.Hn_spf (probe ()) rm ~offered_load:load in
      Table.add_row t
        [ Printf.sprintf "%.2f" load;
          Printf.sprintf "%.2f" d.Stability.raw_gain;
          Printf.sprintf "%.2f" d.Stability.effective_gain;
          (if d.Stability.stable then "yes" else "NO");
          Printf.sprintf "%.2f" h.Stability.raw_gain;
          Printf.sprintf "%.2f" h.Stability.effective_gain;
          (if h.Stability.stable then "yes" else "NO") ])
    [ 0.3; 0.5; 0.7; 0.9; 1.0; 1.2; 1.5; 2.0; 3.0 ];
  print_string (Table.to_string t);
  note
    ("paper (§5): \"In terms of control theory, HN-SPF changes both the@."
    ^^ " equilibrium point and the gain of the routing algorithm.\"@."
    ^^ " measured: D-SPF's loop eigenvalue exceeds 1 above ~65%% load and@."
    ^^ " reaches ~10 at heavy overload (Fig 11's full-range oscillation);@."
    ^^ " HN-SPF's flattened metric map plus the 0.5/0.5 averaging filter@."
    ^^ " (eigenvalue 0.5 + 0.5g, stable for any g > -3) keeps it below 1@."
    ^^ " at every load - with the movement limits as a second, amplitude-@."
    ^^ " bounding line of defense.@.")

(* ------------------------------------------------------------------ *)
(* Congestion spread (§3.3 item 2): how many links run hot over time.   *)

let spread () =
  section "spread — congestion spreading under overload (ours, from §3.3)";
  let g = Lazy.force arpanet in
  let tm = Traffic_matrix.scale (Lazy.force peak_tm) 1.30 in
  note "ARPANET topology at 1.30x peak traffic.@.";
  let series kind =
    let sim = Flow_sim.create g kind tm in
    List.map
      (fun s -> (s.Flow_sim.time_s, float_of_int s.Flow_sim.congested_links))
      (Flow_sim.run sim ~periods:60)
  in
  let dspf = series Metric.D_spf in
  let hnspf = series Metric.Hn_spf in
  print_string
    (Routing_stats.Ascii_plot.render ~height:12 ~x_label:"time (s)"
       ~y_label:"links offered > 90% of capacity"
       [ { Routing_stats.Ascii_plot.label = "D-SPF"; glyph = 'd'; points = dspf };
         { Routing_stats.Ascii_plot.label = "HN-SPF"; glyph = 'h';
           points = hnspf } ]);
  let mean pts =
    List.fold_left (fun acc (_, v) -> acc +. v) 0. pts
    /. float_of_int (List.length pts)
  in
  note
    ("paper (§3.3): \"the over-utilization of subnet links can lead to the@."
    ^^ " spread of congestion within the network\".  measured: D-SPF keeps@."
    ^^ " %.1f links hot on average (the hot set moves every period); HN-SPF@."
    ^^ " pins it at %.1f.@.")
    (mean dspf) (mean hnspf)

(* ------------------------------------------------------------------ *)
(* Flood latency: validating §3.2's synchrony assumption (ours).        *)

let floodlat () =
  section "floodlat — how fast updates actually flood (ours, from §3.2)";
  let g = Lazy.force arpanet in
  let tm = Lazy.force peak_tm in
  let t =
    Table.create
      [ ("metric", Table.Left); ("floods", Table.Right);
        ("mean ms", Table.Right); ("p-max ms", Table.Right);
        ("delivered kb/s", Table.Right) ]
  in
  List.iter
    (fun kind ->
      let config =
        { (Network.default_config kind) with
          Network.seed = 4;
          instant_flooding = false;
          record_series = false }
      in
      let net = Network.create ~config g tm in
      Network.run net ~duration_s:300.;
      let lat = Network.flood_latency_stats net in
      let i = Network.indicators net in
      Table.add_row t
        [ Metric.kind_name kind;
          string_of_int (Routing_stats.Welford.count lat);
          Printf.sprintf "%.0f" (1000. *. Routing_stats.Welford.mean lat);
          Printf.sprintf "%.0f" (1000. *. Routing_stats.Welford.max_value lat);
          Printf.sprintf "%.1f" (i.Measure.internode_traffic_bps /. 1000.) ])
    [ Metric.D_spf; Metric.Hn_spf ];
  print_string (Table.to_string t);
  note
    ("Updates modelled hop-by-hop as priority control packets (no instant@."
    ^^ " network-wide apply): per-node acceptance latency above.  The paper@."
    ^^ " leans on updates being generated at intervals of tens of seconds@."
    ^^ " while packet transit times are typically much less than a second@."
    ^^ " (\u{00a7}3.2) - measured means of a few hundred ms (satellite hops@."
    ^^ " dominate the tail) confirm the synchronized-recomputation model@."
    ^^ " is the right abstraction.@.")

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (bechamel).                                        *)

(* Run a bechamel test tree and return [(name, (ns, minor words, major
   words))] rows per run, sorted by name.  The allocation responders ride
   the same OLS regression as the clock, so every benchmark table and
   BENCH_*.json record carries the hot path's allocation rate next to its
   time — the number the zero-allocation steady-state work is graded on. *)
let run_benchmarks ~quota_s tests =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances =
    Toolkit.Instance.[ monotonic_clock; minor_allocated; major_allocated ]
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota_s) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let estimates instance =
    let results = Analyze.all ols instance raw in
    Hashtbl.fold
      (fun name ols acc ->
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> (name, est) :: acc
        | _ -> acc)
      results []
  in
  let times = estimates Toolkit.Instance.monotonic_clock in
  let minors = estimates Toolkit.Instance.minor_allocated in
  let majors = estimates Toolkit.Instance.major_allocated in
  let words tbl name = Option.value ~default:0. (List.assoc_opt name tbl) in
  List.sort compare
    (List.map
       (fun (name, ns) -> (name, (ns, words minors name, words majors name)))
       times)

let humanize ns =
  if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

(* Negative OLS estimates (noise around zero) print as a clean 0. *)
let humanize_words w =
  if w < 0.5 then "0" else Printf.sprintf "%.0f" w

let print_rows rows =
  let t =
    Table.create
      [ ("benchmark", Table.Left); ("time per run", Table.Right);
        ("minor w/run", Table.Right); ("major w/run", Table.Right) ]
  in
  List.iter
    (fun (name, (ns, minor, major)) ->
      Table.add_row t
        [ name; humanize ns; humanize_words minor; humanize_words major ])
    rows;
  print_string (Table.to_string t)

let perf () =
  section "perf — micro-benchmarks of the implementation (bechamel)";
  let open Bechamel in
  let g = Lazy.force arpanet in
  let tm = Lazy.force peak_tm in
  let metric = Metric.create Metric.Hn_spf g in
  let root = Arpanet.representative_link g in
  let hnm = Hnm.create root in
  let dspf = Dspf.create root in
  let flow = Flow_sim.create g Metric.Hn_spf tm in
  let incremental =
    Routing_spf.Incremental.create g ~root:root.Link.src ~initial_cost:(fun _ -> 30)
  in
  let flip = ref false in
  let flooders =
    Array.init (Graph.node_count g) (fun i ->
        Routing_flooding.Flooder.create g ~owner:(Node.of_int i))
  in
  let tests =
    Test.make_grouped ~name:"arpanet" ~fmt:"%s %s"
      [ Test.make ~name:"dijkstra (57 nodes)"
          (Staged.stage (fun () ->
               ignore
                 (Routing_spf.Dijkstra.compute g ~cost:(Metric.cost_fn metric)
                    root.Link.src)));
        Test.make ~name:"incremental spf (one change)"
          (Staged.stage (fun () ->
               flip := not !flip;
               Routing_spf.Incremental.set_cost incremental root.Link.id
                 (if !flip then 60 else 30)));
        Test.make ~name:"incremental table refresh"
          (Staged.stage (fun () ->
               ignore (Routing_spf.Incremental.next_hop_array incremental)));
        Test.make ~name:"full tree + table (one node)"
          (Staged.stage (fun () ->
               ignore
                 (Routing_spf.Routing_table.of_tree
                    (Routing_spf.Dijkstra.compute g
                       ~cost:(Metric.cost_fn metric) root.Link.src))));
        Test.make ~name:"hnm period update"
          (Staged.stage (fun () ->
               ignore (Hnm.period_update hnm ~measured_delay_s:0.05)));
        Test.make ~name:"dspf period update"
          (Staged.stage (fun () ->
               ignore (Dspf.period_update dspf ~measured_delay_s:0.05)));
        Test.make ~name:"network flood (one update)"
          (Staged.stage (fun () ->
               let u =
                 Routing_flooding.Flooder.originate
                   flooders.(Node.to_int root.Link.src)
                   ~costs:[ (root.Link.id, 42) ]
               in
               ignore (Routing_flooding.Broadcast.flood g flooders u)));
        Test.make ~name:"flow sim routing period"
          (Staged.stage (fun () -> ignore (Flow_sim.step flow))) ]
  in
  print_rows (run_benchmarks ~quota_s:0.5 tests)

(* ------------------------------------------------------------------ *)
(* SPF engine benchmarks: full vs incremental vs parallel all-pairs.   *)
(* `perf` runs these at full quota and records BENCH_spf.json so the   *)
(* perf trajectory is tracked across PRs; `perf-quick` is the runtest  *)
(* smoke mode — tiny quota, no file written.                           *)

module Spf_engine = Routing_spf.Spf_engine
module Spf_tree = Routing_spf.Spf_tree
module Domain_pool = Routing_metric.Domain_pool

(* Each topology is (name, graph, wanted sources): [None] benches the
   all-pairs baselines too (feasible only when every tree fits in memory
   and a full sweep fits the quota); [Some k] restricts the engine to [k]
   evenly spread sources — how a large-network experiment would actually
   use it.  The 10^5-node tier is opt-in ([BENCH_SPF_100K=1]): its
   recompute rows cost seconds per iteration. *)
let spf_bench_topologies ~quick () =
  if quick then
    [ ("arpanet", Lazy.force arpanet, None);
      ( "mesh200",
        Generators.ring_chord (Rng.create 99) ~nodes:200 ~chords:120,
        None );
      ( "hier184",
        Generators.hierarchical ~cores:4 ~pops_per_core:5 ~access_per_pop:8
          (),
        None ) ]
  else
    [ ("arpanet", Lazy.force arpanet, None);
      ( "mesh200",
        Generators.ring_chord (Rng.create 99) ~nodes:200 ~chords:120,
        None );
      ( "hier1k",
        Generators.hierarchical ~cores:8 ~pops_per_core:11 ~access_per_pop:10
          (),
        None );
      ( "wax1k",
        Generators.waxman (Rng.create 42) ~nodes:1000 ~alpha:0.9 ~beta:0.05,
        None );
      ( "hier10k",
        Generators.hierarchical ~cores:16 ~pops_per_core:25
          ~access_per_pop:24 (),
        Some 128 ) ]
    @
    if Sys.getenv_opt "BENCH_SPF_100K" <> None then
      [ ( "hier100k",
          Generators.hierarchical ~cores:25 ~pops_per_core:40
            ~access_per_pop:99 (),
          Some 8 ) ]
    else []

(* One benchmark group per topology.  The baseline reproduces the
   pre-engine behavior: an independent full Dijkstra per source, costs
   re-evaluated per edge.  The engine rows measure a refresh after one or
   eight links' flooded costs changed — against both the dynamic-repair
   path and the per-source recompute fallback, so BENCH_spf.json carries
   the repair speedup directly — and after none did. *)
let spf_bench_tests ~pool (name, g, wanted_count) =
  let open Bechamel in
  let nl = Graph.link_count g in
  let costs = Array.init nl (fun i -> 1 + ((i * 37) mod 60)) in
  let cost lid = costs.(Link.id_to_int lid) in
  let n = Graph.node_count g in
  let wanted =
    match wanted_count with
    | None -> fun _ -> true
    | Some k ->
      let stride = max 1 (n / k) in
      fun node -> Node.to_int node mod stride = 0
  in
  let make_engine ?repair () =
    let e = Spf_engine.create ?repair g in
    Spf_engine.refresh ~wanted e ~cost;
    e
  in
  let engine_one = make_engine () in
  let engine_one_rc = make_engine ~repair:false () in
  let engine_multi = make_engine () in
  let engine_multi_rc = make_engine ~repair:false () in
  let engine_none = make_engine () in
  let probe = Link.id_of_int 0 in
  (* Each test owns its flip state: the first measured call must be a
     real change (the engine starts at base costs), and every later call
     alternates the delta back and forth so no call degenerates into the
     no-change fast path.  A shared flip would let another test's parity
     leak in and turn a row's first — sometimes only — sample into a
     no-op refresh, wrecking the estimate for the slow rows. *)
  let one_change engine =
    let flip = ref false in
    Staged.stage (fun () ->
        flip := not !flip;
        let base = costs.(Link.id_to_int probe) in
        let c = if !flip then base + 10 else base in
        Spf_engine.refresh ~wanted engine ~cost:(fun lid ->
            if Link.id_equal lid probe then c else cost lid))
  in
  let probes = Array.init 8 (fun k -> k * nl / 8) in
  let multi_change engine =
    let flip = ref false in
    Staged.stage (fun () ->
        flip := not !flip;
        let delta = if !flip then 10 else 0 in
        Spf_engine.refresh ~wanted engine ~cost:(fun lid ->
            let i = Link.id_to_int lid in
            if Array.exists (fun p -> p = i) probes then costs.(i) + delta
            else costs.(i)))
  in
  let seed_all_pairs () =
    Array.init n (fun i -> Routing_spf.Dijkstra.compute g ~cost (Node.of_int i))
  in
  let all_pairs_rows =
    [ Test.make ~name:"all-pairs full (per-source baseline)"
        (Staged.stage (fun () -> ignore (seed_all_pairs ())));
      Test.make ~name:"all-pairs shared weights"
        (Staged.stage (fun () ->
             ignore (Routing_spf.Dijkstra.all_pairs g ~cost)));
      Test.make
        ~name:
          (Printf.sprintf "all-pairs parallel (%d domains)"
             (Domain_pool.size pool))
        (Staged.stage (fun () ->
             ignore (Routing_spf.Dijkstra.all_pairs ~pool g ~cost))) ]
  in
  let engine_rows =
    [ Test.make ~name:"engine refresh (one link change)"
        (one_change engine_one);
      Test.make ~name:"engine refresh (one link change, recompute)"
        (one_change engine_one_rc);
      Test.make ~name:"engine refresh (8 link changes)"
        (multi_change engine_multi);
      Test.make ~name:"engine refresh (8 link changes, recompute)"
        (multi_change engine_multi_rc);
      Test.make ~name:"engine refresh (no change)"
        (Staged.stage (fun () -> Spf_engine.refresh ~wanted engine_none ~cost))
    ]
  in
  Test.make_grouped ~name ~fmt:"%s %s"
    (match wanted_count with
    | None -> all_pairs_rows @ engine_rows
    | Some _ -> engine_rows)

module Obs_metrics = Routing_obs.Metrics
module Obs_json = Routing_obs.Json
module Obs_tracer = Routing_obs.Tracer

(* Run metadata the harness passes via the environment ([BENCH_GIT_REV],
   [BENCH_DATE] — an ISO date); "unknown" when run by hand. *)
let bench_env key =
  match Sys.getenv_opt key with Some v when v <> "" -> v | _ -> "unknown"

let write_bench_json path ~domains ~topologies rows =
  let reg = Obs_metrics.create () in
  Obs_metrics.set_meta reg "benchmark" "all-pairs SPF refresh";
  Obs_metrics.set_meta reg "units"
    "ns / minor words / major words per run (bechamel OLS estimates)";
  Obs_metrics.set_meta reg "domains" (string_of_int domains);
  Obs_metrics.set_meta reg "git_rev" (bench_env "BENCH_GIT_REV");
  Obs_metrics.set_meta reg "date" (bench_env "BENCH_DATE");
  List.iter
    (fun (name, (ns, minor, major)) ->
      let gauge metric v =
        Obs_metrics.set
          (Obs_metrics.gauge reg ~labels:[ ("case", name) ] metric)
          v
      in
      gauge "ns_per_run" ns;
      gauge "minor_words_per_run" minor;
      gauge "major_words_per_run" major)
    rows;
  let speedup_of topology =
    let find suffix =
      Option.map
        (fun (ns, _, _) -> ns)
        (List.assoc_opt (topology ^ " " ^ suffix) rows)
    in
    let ratio num den =
      match (num, den) with
      | Some n, Some d when d > 0. -> Obs_json.Float (n /. d)
      | _ -> Obs_json.Null
    in
    let baseline = find "all-pairs full (per-source baseline)" in
    Obs_json.Obj
      [ ("topology", Obs_json.String topology);
        ( "incremental_vs_full",
          ratio baseline (find "engine refresh (one link change)") );
        ( "repair_vs_recompute_1change",
          ratio
            (find "engine refresh (one link change, recompute)")
            (find "engine refresh (one link change)") );
        ( "repair_vs_recompute_8changes",
          ratio
            (find "engine refresh (8 link changes, recompute)")
            (find "engine refresh (8 link changes)") );
        ( "shared_weights_vs_full",
          ratio baseline (find "all-pairs shared weights") );
        ( "parallel_vs_full",
          ratio baseline
            (find (Printf.sprintf "all-pairs parallel (%d domains)" domains))
        ) ]
  in
  Obs_metrics.write_file reg path
    ~extra:
      [ ( "speedups_vs_full_recompute",
          Obs_json.List (List.map speedup_of topologies) ) ]

(* Crash-and-identity gate, run before any timing: drive the repair
   engine through the delta shapes the rows below measure (one-link
   increase and decrease, an 8-link batch, a link outage and its
   recovery) on a generated hierarchy, and insist every repaired tree is
   bit-identical to a from-scratch [Dijkstra.compute].  A benchmark that
   times a wrong answer is worse than no benchmark. *)
let spf_identity_gate () =
  let g =
    Generators.hierarchical ~cores:4 ~pops_per_core:5 ~access_per_pop:8 ()
  in
  let nl = Graph.link_count g in
  let n = Graph.node_count g in
  let costs = Array.init nl (fun i -> 1 + ((i * 37) mod 60)) in
  let up = Array.make nl true in
  let cost lid = costs.(Link.id_to_int lid) in
  let enabled lid = up.(Link.id_to_int lid) in
  let engine = Spf_engine.create g in
  let check step =
    Spf_engine.refresh ~enabled engine ~cost;
    for i = 0 to n - 1 do
      let src = Node.of_int i in
      let fresh = Routing_spf.Dijkstra.compute ~enabled g ~cost src in
      if not (Spf_tree.equal (Spf_engine.tree engine src) fresh) then
        failwith
          (Printf.sprintf
             "spf identity gate: repaired tree for source %d diverges \
              after %s"
             i step)
    done
  in
  check "initial refresh";
  costs.(0) <- costs.(0) + 10;
  check "one link increase";
  costs.(0) <- costs.(0) - 6;
  check "one link decrease";
  for k = 0 to 7 do
    costs.(k * nl / 8 mod nl) <- 1 + (k * 13 mod 60)
  done;
  check "8 link batch";
  up.(5) <- false;
  check "link disable";
  up.(5) <- true;
  check "link enable";
  note "identity gate: repaired trees match from-scratch Dijkstra@."

let perf_spf ~quick () =
  section
    (if quick then
       "perf-quick — SPF engine smoke benchmarks (tiny quota, no file)"
     else "perf-spf — full vs repair vs recompute vs parallel all-pairs SPF");
  spf_identity_gate ();
  let pool = Domain_pool.create (max 2 (Domain_pool.recommended_size ())) in
  Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool) @@ fun () ->
  let quota_s = if quick then 0.02 else 0.5 in
  let topologies = spf_bench_topologies ~quick () in
  let rows =
    List.concat_map
      (fun topo -> run_benchmarks ~quota_s (spf_bench_tests ~pool topo))
      topologies
  in
  print_rows rows;
  if not quick then begin
    write_bench_json "BENCH_spf.json" ~domains:(Domain_pool.size pool)
      ~topologies:(List.map (fun (t, _, _) -> t) topologies)
      rows;
    note "wrote BENCH_spf.json@."
  end

(* ------------------------------------------------------------------ *)
(* Flow-simulator hot path + sweep throughput.  `sim` records          *)
(* BENCH_sim.json; `sim-quick` is the runtest/CI smoke mode — tiny     *)
(* quota and grid, no file written, plus a round-trip check that the   *)
(* would-be record survives the routing_obs JSON codec.                *)

module Load_assign = Routing_sim.Load_assign
module Sweep_spec = Routing_sweep.Sweep_spec
module Sweep_engine = Routing_sweep.Sweep_engine

let mesh200 () = Generators.ring_chord (Rng.create 99) ~nodes:200 ~chords:120

let sim_bench_rows ~quota_s =
  let open Bechamel in
  let g = mesh200 () in
  let tm = Traffic_matrix.gravity (Rng.create 3) ~nodes:200 ~total_bps:2e6 in
  let flow = Flow_sim.create g Metric.Hn_spf tm in
  (* Same simulation with a live flight recorder: the pair of rows is the
     measured cost of tracing (the "(traced)" / plain ratio lands in
     BENCH_sim.json as [tracer_on_vs_off]; the plain row's cost with the
     null tracer is the disabled-tracing overhead, a single branch). *)
  let traced_flow =
    Flow_sim.create
      ~tracer:(Obs_tracer.create ~clock:Obs_tracer.Untimed ())
      g Metric.Hn_spf tm
  in
  (* Assignment rows isolate the per-period load spread: trees are fixed
     (one refresh up front), so aggregated-vs-baseline is exactly the
     O(V+E) sweep against the historical per-flow tree climb. *)
  let nl = Graph.link_count g in
  let costs = Array.init nl (fun i -> 1 + ((i * 37) mod 60)) in
  let engine = Spf_engine.create g in
  Spf_engine.refresh engine ~cost:(fun lid -> costs.(Link.id_to_int lid));
  let tree_for = Spf_engine.tree engine in
  let flows = Routing_sim.Flow_store.of_matrix tm in
  let nf = Routing_sim.Flow_store.length flows in
  let assignment = Load_assign.create g in
  let baseline = Load_assign.create g in
  let sending = Array.sub (Routing_sim.Flow_store.demand_col flows) 0 nf in
  let offered = Array.make nl 0. in
  let first_hop = Array.make nf (-2) in
  let tests =
    Test.make_grouped ~name:"mesh200" ~fmt:"%s %s"
      [ Test.make ~name:"flow sim routing period"
          (Staged.stage (fun () -> ignore (Flow_sim.step flow)));
        Test.make ~name:"flow sim routing period (traced)"
          (Staged.stage (fun () -> ignore (Flow_sim.step traced_flow)));
        Test.make ~name:"assignment (aggregated)"
          (Staged.stage (fun () ->
               Array.fill offered 0 nl 0.;
               Load_assign.assign assignment ~flows ~tree_for ~sending
                 ~offered ~first_hop));
        Test.make ~name:"assignment (per-flow baseline)"
          (Staged.stage (fun () ->
               Array.fill offered 0 nl 0.;
               Load_assign.assign_baseline baseline ~flows ~tree_for ~sending
                 ~offered ~first_hop)) ]
  in
  run_benchmarks ~quota_s tests

(* Million-flow fast path: >= 1e6 heavy-tailed host-level flows through
   one period's load spread.  The steady-state sequential pass must
   allocate zero minor words (the runtime gate behind the A0xx static
   analysis), and the parallel pass must reproduce the sequential output
   bit for bit before it is allowed on the scoreboard. *)
let million_flow_rows ~quick () =
  let g = mesh200 () in
  let nl = Graph.link_count g in
  let costs = Array.init nl (fun i -> 1 + ((i * 37) mod 60)) in
  let engine = Spf_engine.create g in
  Spf_engine.refresh engine ~cost:(fun lid -> costs.(Link.id_to_int lid));
  let tree_for = Spf_engine.tree engine in
  let nf = 1_000_000 in
  let flows =
    Routing_sim.Flow_store.heavy_tailed (Rng.create 7) ~nodes:200 ~flows:nf
      ~total_bps:2e9
      ~size:(Routing_sim.Flow_store.Pareto { alpha = 1.2 })
  in
  let t = Load_assign.create g in
  let sending = Array.sub (Routing_sim.Flow_store.demand_col flows) 0 nf in
  let offered = Array.make nl 0. in
  let first_hop = Array.make nf (-2) in
  let assign_once () =
    Array.fill offered 0 nl 0.;
    Load_assign.assign t ~flows ~tree_for ~sending ~offered ~first_hop
  in
  (* Warm the scratch (grouping cache, per-destination buffers); after
     that the pass must be exactly allocation-free. *)
  assign_once ();
  assign_once ();
  let before = Gc.minor_words () in
  assign_once ();
  let dminor = Gc.minor_words () -. before in
  if dminor <> 0. then
    failwith
      (Printf.sprintf
         "million-flow steady-state assignment allocated %.0f minor words"
         dminor);
  let reps = if quick then 2 else 8 in
  let time_reps f =
    let s0 = Gc.quick_stat () in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    let s1 = Gc.quick_stat () in
    let per x = x /. float_of_int reps in
    ( per dt,
      per (s1.Gc.minor_words -. s0.Gc.minor_words),
      per (s1.Gc.major_words -. s0.Gc.major_words) )
  in
  let seq_s, seq_minor, seq_major = time_reps assign_once in
  (* Parallel pass: first prove it reproduces the sequential bytes (the
     stream replay preserves the float-add order), then time it.  On a
     one-core pool the dispatch falls back to sequential, which is the
     honest number for that box. *)
  let offered_seq = Array.copy offered in
  let fh_seq = Array.copy first_hop in
  let pool = Domain_pool.create (min 4 (Domain.recommended_domain_count ())) in
  let par_s, par_minor, par_major =
    Fun.protect
      ~finally:(fun () -> Domain_pool.shutdown pool)
      (fun () ->
        let assign_par () =
          Array.fill offered 0 nl 0.;
          Load_assign.assign ~pool t ~flows ~tree_for ~sending ~offered
            ~first_hop
        in
        assign_par ();
        Array.iteri
          (fun l o ->
            if Int64.bits_of_float o <> Int64.bits_of_float offered_seq.(l)
            then
              failwith
                (Printf.sprintf
                   "parallel million-flow assignment differs on link %d" l))
          offered;
        Array.iteri
          (fun fi h ->
            if h <> fh_seq.(fi) then
              failwith
                (Printf.sprintf
                   "parallel million-flow first hop differs on flow %d" fi))
          first_hop;
        time_reps assign_par)
  in
  let fps s = float_of_int nf /. Float.max s 1e-12 in
  note
    "million-flow assignment: %d flows, %.2f Mflows/s sequential (0 minor \
     words steady state), %.2f Mflows/s parallel@."
    nf
    (fps seq_s /. 1e6)
    (fps par_s /. 1e6);
  let rows =
    [ ( "mesh200 million-flow assignment (sequential)",
        (seq_s *. 1e9, seq_minor, seq_major) );
      ( "mesh200 million-flow assignment (parallel)",
        (par_s *. 1e9, par_minor, par_major) ) ]
  in
  (rows, (nf, fps seq_s, fps par_s))

let sweep_spec_of_points ~points ~periods =
  { Sweep_spec.scenarios = [ Sweep_spec.Builtin "arpanet" ];
    metrics = [ Metric.D_spf; Metric.Hn_spf ];
    scales = [ 0.7; 1.0 ];
    seeds = List.init (max 1 (points / 4)) (fun i -> i + 1);
    periods;
    warmup = min 2 (periods - 1);
    critical_load = None }

(* The shipped paper grid is the headline sweep workload; fall back to
   the synthetic grid when the spec is not where the repo keeps it
   (bench run from an odd cwd). *)
let paper_sweep_spec ~points ~periods =
  match Sweep_spec.load "scenarios/paper_sweep.json" with
  | Ok spec -> ("scenarios/paper_sweep.json", spec)
  | Error _ -> ("synthetic arpanet grid", sweep_spec_of_points ~points ~periods)

(* A critical-load ramp over the ARPANET builtin: drive offered load
   from half to 2.5x nominal and let the engine locate the phase-change
   knee per metric.  `sim-quick` runs the tiny version as a CI smoke
   assertion (the detector must return a finite knee on the ramp); the
   full run records the knees in BENCH_sim.json. *)
let ramp_spec_of ~steps ~seeds ~periods =
  let lo = 0.5 and hi = 2.5 in
  { Sweep_spec.scenarios = [ Sweep_spec.Builtin "arpanet" ];
    metrics = [ Metric.D_spf; Metric.Hn_spf ];
    scales =
      List.init steps (fun i ->
          lo +. ((hi -. lo) *. float_of_int i /. float_of_int (steps - 1)));
    seeds;
    periods;
    warmup = min 2 (periods - 1);
    critical_load =
      Some { Sweep_spec.ramp_from = lo; ramp_to = hi; ramp_steps = steps } }

let critical_load_knees ~quick =
  let spec =
    if quick then ramp_spec_of ~steps:4 ~seeds:[ 1 ] ~periods:3
    else ramp_spec_of ~steps:6 ~seeds:[ 1; 2 ] ~periods:12
  in
  let report = Sweep_engine.run ~domains:1 spec in
  let knees = report.Sweep_engine.knees in
  if knees = [] then failwith "critical-load ramp located no knee";
  List.iter
    (fun (k : Sweep_engine.knee) ->
      let on_ramp x = Float.is_finite x && x >= 0.5 && x <= 2.5 in
      if not (on_ramp k.Sweep_engine.k_scale_delay
              && on_ramp k.Sweep_engine.k_scale_throughput) then
        failwith
          (Printf.sprintf "critical-load knee off the ramp for %s/%s"
             k.Sweep_engine.k_scenario
             (Metric.kind_name k.Sweep_engine.k_metric));
      note
        "critical load %s/%s: delay knee at x%g (%.1f ms rtt), throughput \
         knee at x%g@."
        k.Sweep_engine.k_scenario
        (Metric.kind_name k.Sweep_engine.k_metric)
        k.Sweep_engine.k_scale_delay k.Sweep_engine.k_delay_ms
        k.Sweep_engine.k_scale_throughput)
    knees;
  knees

let knee_json (k : Sweep_engine.knee) =
  Obs_json.Obj
    [ ("scenario", Obs_json.String k.Sweep_engine.k_scenario);
      ("metric", Obs_json.String (Metric.kind_name k.Sweep_engine.k_metric));
      ("scale_delay_knee", Obs_json.Float k.Sweep_engine.k_scale_delay);
      ("scale_throughput_knee", Obs_json.Float k.Sweep_engine.k_scale_throughput);
      ("round_trip_delay_ms_at_knee", Obs_json.Float k.Sweep_engine.k_delay_ms);
      ( "internode_traffic_bps_at_knee",
        Obs_json.Float k.Sweep_engine.k_throughput_bps ) ]

(* Wall-clock sweep throughput across pool sizes, plus the byte-identity
   check the sweep engine's determinism contract rests on.  The spec is
   prepared once (parse-once is part of what's being measured — every
   run shares the same immutable spec, as the CLI does). *)
let sweep_rows ~spec ~domain_counts =
  let prep = Sweep_engine.prepare spec in
  let reports =
    List.map
      (fun domains ->
        let t0 = Unix.gettimeofday () in
        let report = Sweep_engine.run_prepared ~domains prep in
        let dt = Unix.gettimeofday () -. t0 in
        let n = Array.length report.Sweep_engine.outcomes in
        (domains, float_of_int n /. Float.max dt 1e-9,
         Obs_json.to_string report.Sweep_engine.json))
      domain_counts
  in
  (match reports with
   | (_, _, first) :: rest ->
     List.iter
       (fun (domains, _, json) ->
         if not (String.equal first json) then
           failwith
             (Printf.sprintf
                "sweep report differs between %d and %d domains"
                (match reports with (d, _, _) :: _ -> d | [] -> 0)
                domains))
       rest
   | [] -> ());
  List.map (fun (domains, pps, _) -> (domains, pps)) reports

let write_sim_json path ~cores ~sweep_src ~rows ~sweep ~million ~knees =
  let reg = Obs_metrics.create () in
  Obs_metrics.set_meta reg "benchmark" "flow-sim hot path + sweep throughput";
  Obs_metrics.set_meta reg "units"
    "ns / minor words / major words per run (bechamel OLS estimates); sweep \
     rows are grid points per second";
  (* This box's physical parallelism, recorded so the sweep-throughput
     rows read honestly: with one core, more domains cannot beat one. *)
  Obs_metrics.set_meta reg "cores" (string_of_int cores);
  Obs_metrics.set_meta reg "sweep_workload" sweep_src;
  Obs_metrics.set_meta reg "git_rev" (bench_env "BENCH_GIT_REV");
  Obs_metrics.set_meta reg "date" (bench_env "BENCH_DATE");
  List.iter
    (fun (name, (ns, minor, major)) ->
      let gauge metric v =
        Obs_metrics.set
          (Obs_metrics.gauge reg ~labels:[ ("case", name) ] metric)
          v
      in
      gauge "ns_per_run" ns;
      gauge "minor_words_per_run" minor;
      gauge "major_words_per_run" major)
    rows;
  List.iter
    (fun (domains, pps) ->
      Obs_metrics.set
        (Obs_metrics.gauge reg
           ~labels:[ ("domains", string_of_int domains) ]
           "sweep_points_per_s")
        pps)
    sweep;
  let ratio num den =
    match (num, den) with
    | Some n, Some d when d > 0. -> Obs_json.Float (n /. d)
    | _ -> Obs_json.Null
  in
  let time name =
    Option.map (fun (ns, _, _) -> ns) (List.assoc_opt name rows)
  in
  let json =
    Obs_metrics.to_json reg
      ~extra:
        [ ( "speedups",
            Obs_json.Obj
              [ ( "assignment_aggregated_vs_baseline",
                  ratio
                    (time "mesh200 assignment (per-flow baseline)")
                    (time "mesh200 assignment (aggregated)") );
                ( "tracer_on_vs_off",
                  ratio
                    (time "mesh200 flow sim routing period (traced)")
                    (time "mesh200 flow sim routing period") );
                ( "sweep_4_domains_vs_1",
                  ratio
                    (List.assoc_opt 4 sweep)
                    (List.assoc_opt 1 sweep) );
                (* Speedup per domain: pps(4) / (4 × pps(1)).  1.0 is
                   perfect scaling; on a single-core host (see the
                   "cores" meta) the theoretical best is 0.25. *)
                ( "sweep_parallel_efficiency",
                  ratio
                    (List.assoc_opt 4 sweep)
                    (Option.map (fun pps -> 4. *. pps)
                       (List.assoc_opt 1 sweep)) ) ] );
          (let nf, seq_fps, par_fps = million in
           ( "million_flow",
             Obs_json.Obj
               [ ("flows_per_period", Obs_json.Int nf);
                 ("flows_per_s_sequential", Obs_json.Float seq_fps);
                 ("flows_per_s_parallel", Obs_json.Float par_fps);
                 ("steady_state_minor_words", Obs_json.Int 0) ] ));
          ("critical_load", Obs_json.List (List.map knee_json knees)) ]
  in
  (* The record must survive its own codec — CI's schema check. *)
  (match Obs_json.of_string (Obs_json.to_string json) with
   | Ok round when Obs_json.equal round json -> ()
   | Ok _ -> failwith "BENCH_sim.json does not round-trip identically"
   | Error e -> failwith ("BENCH_sim.json does not re-parse: " ^ e));
  (match path with
   | None -> ()
   | Some path ->
     let oc = open_out path in
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () ->
         output_string oc (Obs_json.to_string_pretty json);
         output_char oc '\n'))

let bench_sim ~quick () =
  section
    (if quick then
       "sim-quick — flow-sim smoke benchmarks (tiny quota and grid, no file)"
     else "sim — flow-sim hot path and sweep throughput");
  let rows = sim_bench_rows ~quota_s:(if quick then 0.02 else 0.5) in
  let mf_rows, million = million_flow_rows ~quick () in
  let rows = rows @ mf_rows in
  print_rows rows;
  let sweep_src, sweep =
    if quick then
      ( "synthetic arpanet grid",
        sweep_rows ~spec:(sweep_spec_of_points ~points:2 ~periods:3)
          ~domain_counts:[ 1; 2 ] )
    else
      let src, spec = paper_sweep_spec ~points:16 ~periods:12 in
      (src, sweep_rows ~spec ~domain_counts:[ 1; 2; 4; 8 ])
  in
  List.iter
    (fun (domains, pps) ->
      note "sweep throughput: %.2f points/s at %d domain%s (%s)@." pps domains
        (if domains = 1 then "" else "s")
        sweep_src)
    sweep;
  note "sweep reports byte-identical across domain counts@.";
  let knees = critical_load_knees ~quick in
  let cores = Domain.recommended_domain_count () in
  let path = if quick then None else Some "BENCH_sim.json" in
  write_sim_json path ~cores ~sweep_src ~rows ~sweep ~million ~knees;
  if not quick then note "wrote BENCH_sim.json@."

(* ------------------------------------------------------------------ *)

let experiments =
  [ ("fig1", fig1); ("fig4", fig4); ("fig5", fig5); ("fig7", fig7);
    ("fig8", fig8); ("fig9", fig9); ("fig10", fig10); ("fig11", fig11);
    ("fig12", fig12); ("table1", table1); ("fig13", fig13);
    ("ablate", ablate); ("gen3", gen3); ("scaling", scaling);
    ("multipath", multipath); ("spread", spread); ("gain", gain);
    ("milnet", milnet); ("modern", modern); ("floodlat", floodlat) ]

(* Heavyweight targets excluded from the default sweep. *)
let extra_experiments = [ ("table1p", table1p) ]

let () =
  let requested =
    match Array.to_list Sys.argv with _ :: args -> args | [] -> []
  in
  match requested with
  | [] ->
    List.iter (fun (_, run) -> run ()) experiments;
    Format.printf
      "@.All experiments done.  Run with 'perf' for micro-benchmarks, or@.\
       name specific experiments: %s@."
      (String.concat " " (List.map fst experiments))
  | names ->
    List.iter
      (fun name ->
        if String.equal name "perf" then begin
          perf ();
          perf_spf ~quick:false ()
        end
        else if String.equal name "perf-quick" then perf_spf ~quick:true ()
        else if String.equal name "perf-spf" then perf_spf ~quick:false ()
        else if String.equal name "sim" then bench_sim ~quick:false ()
        else if String.equal name "sim-quick" then bench_sim ~quick:true ()
        else
          match List.assoc_opt name (experiments @ extra_experiments) with
          | Some run -> run ()
          | None ->
            Format.printf
              "unknown experiment %S (have: %s, table1p, perf, perf-quick, \
               perf-spf, sim, sim-quick)@."
              name
              (String.concat " " (List.map fst experiments)))
      names
